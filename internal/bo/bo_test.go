package bo

import (
	"math"
	"testing"
)

// sphere has its minimum 0 at the given center.
func sphere(center []float64) func(x, ctx []float64) float64 {
	return func(x, ctx []float64) float64 {
		var s float64
		for i := range x {
			d := x[i] - center[i]
			s += d * d
		}
		return s
	}
}

func TestMinimizeSphere2D(t *testing.T) {
	center := []float64{0.3, 0.7}
	opts := DefaultOptions()
	opts.MaxIter = 40
	opts.EIStopFrac = 0 // run all iterations
	opts.Seed = 1
	res := Minimize(Problem{Dim: 2, Eval: sphere(center)}, opts)
	if res.BestY > 0.01 {
		t.Fatalf("BestY = %v; want < 0.01", res.BestY)
	}
	for i := range center {
		if math.Abs(res.BestX[i]-center[i]) > 0.15 {
			t.Fatalf("BestX = %v; want ≈ %v", res.BestX, center)
		}
	}
	if res.Evals != 40 || len(res.History) != 40 {
		t.Fatalf("Evals = %d, history %d; want 40", res.Evals, len(res.History))
	}
}

func TestBeatsRandomSearch(t *testing.T) {
	// With the same evaluation budget, BO must beat pure random sampling on
	// a smooth function (compare against the best of the warm-start pool
	// enlarged to the full budget).
	center := []float64{0.52, 0.18, 0.85}
	obj := sphere(center)
	opts := DefaultOptions()
	opts.MaxIter = 30
	opts.EIStopFrac = 0
	opts.Seed = 2
	res := Minimize(Problem{Dim: 3, Eval: obj}, opts)

	randOpts := opts
	randOpts.InitPoints = 30 // LHS-only ⇒ no model-guided steps
	randRes := Minimize(Problem{Dim: 3, Eval: obj}, randOpts)
	if res.BestY >= randRes.BestY {
		t.Fatalf("BO (%v) did not beat random (%v)", res.BestY, randRes.BestY)
	}
}

func TestStopCondition(t *testing.T) {
	// A flat-ish objective should trigger the EI stop quickly after MinIter.
	obj := func(x, ctx []float64) float64 { return 100 + x[0]*0.001 }
	opts := DefaultOptions()
	opts.MaxIter = 50
	opts.MinIter = 10
	opts.EIStopFrac = 0.10
	opts.Seed = 3
	res := Minimize(Problem{Dim: 2, Eval: obj}, opts)
	if !res.StoppedEarly {
		t.Fatal("stop condition never fired on flat objective")
	}
	if res.Evals < opts.MinIter {
		t.Fatalf("stopped before MinIter: %d", res.Evals)
	}
	if res.Evals >= opts.MaxIter {
		t.Fatal("ran to MaxIter despite flat objective")
	}
}

func TestContextIsPassedAndModeled(t *testing.T) {
	// Objective depends on context; optimum of x is wherever ctx says.
	ctxVal := 0.2
	p := Problem{
		Dim: 1,
		Eval: func(x, ctx []float64) float64 {
			if len(ctx) != 1 {
				t.Fatalf("ctx = %v", ctx)
			}
			d := x[0] - ctx[0]
			return d * d
		},
		Context: func(it int) []float64 { return []float64{ctxVal} },
	}
	opts := DefaultOptions()
	opts.MaxIter = 25
	opts.EIStopFrac = 0
	opts.Seed = 4
	res := Minimize(p, opts)
	if math.Abs(res.BestX[0]-ctxVal) > 0.15 {
		t.Fatalf("BestX = %v; want ≈ %v", res.BestX, ctxVal)
	}
	for _, s := range res.History {
		if len(s.Ctx) != 1 || s.Ctx[0] != ctxVal {
			t.Fatalf("history ctx = %v", s.Ctx)
		}
	}
}

func TestWarmStartInit(t *testing.T) {
	// Seeding with a known good point should keep it as incumbent and skip
	// re-evaluation.
	obj := sphere([]float64{0.5})
	init := []Step{{X: []float64{0.5}, Y: 0}}
	opts := DefaultOptions()
	opts.MaxIter = 5
	opts.EIStopFrac = 0
	opts.Seed = 5
	opts.Init = init
	res := Minimize(Problem{Dim: 1, Eval: obj}, opts)
	if res.BestY != 0 {
		t.Fatalf("BestY = %v; want 0 from init", res.BestY)
	}
	if res.Evals != 5 {
		t.Fatalf("Evals = %d; want 5 fresh evaluations", res.Evals)
	}
	if len(res.History) != 6 {
		t.Fatalf("history = %d; want init + 5", len(res.History))
	}
}

func TestDeterminism(t *testing.T) {
	obj := sphere([]float64{0.4, 0.6})
	opts := DefaultOptions()
	opts.MaxIter = 15
	opts.Seed = 6
	a := Minimize(Problem{Dim: 2, Eval: obj}, opts)
	b := Minimize(Problem{Dim: 2, Eval: obj}, opts)
	if a.BestY != b.BestY || a.Evals != b.Evals {
		t.Fatalf("runs diverged: %v/%d vs %v/%d", a.BestY, a.Evals, b.BestY, b.Evals)
	}
	for i := range a.History {
		if a.History[i].Y != b.History[i].Y {
			t.Fatalf("history diverged at %d", i)
		}
	}
}

func TestOptionDefaultsApplied(t *testing.T) {
	// Zero options must not panic and must still evaluate something.
	res := Minimize(Problem{Dim: 1, Eval: sphere([]float64{0.5})}, Options{MaxIter: 4, Seed: 7})
	if res.Evals == 0 || res.BestX == nil {
		t.Fatal("degenerate options produced no work")
	}
}

func TestExpectedImprovementProperties(t *testing.T) {
	// EI must be non-negative and larger for points predicted to be better.
	obj := sphere([]float64{0.5})
	opts := DefaultOptions()
	opts.MaxIter = 12
	opts.EIStopFrac = 0
	opts.Seed = 8
	res := Minimize(Problem{Dim: 1, Eval: obj}, opts)
	for _, s := range res.History {
		if s.EI < 0 {
			t.Fatalf("negative EI %v", s.EI)
		}
	}
}

func TestTrimHistory(t *testing.T) {
	var hist []Step
	for i := 0; i < 20; i++ {
		hist = append(hist, Step{X: []float64{float64(i)}, Y: float64(20 - i)})
	}
	out := trimHistory(hist, 10)
	if len(out) != 10 {
		t.Fatalf("trimmed to %d; want 10", len(out))
	}
	// The global best (Y=1, last element) must survive.
	found := false
	for _, s := range out {
		if s.Y == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("best observation dropped by trim")
	}
	// No trim when under the cap.
	if got := trimHistory(hist, 0); len(got) != len(hist) {
		t.Fatal("cap 0 should disable trimming")
	}
	if got := trimHistory(hist, 50); len(got) != len(hist) {
		t.Fatal("cap above length should not trim")
	}
}

func TestMaxModelPointsAndHyperEvery(t *testing.T) {
	// Long run with a capped model and lazy hyperparameter refresh must
	// still optimize.
	obj := sphere([]float64{0.6, 0.4})
	opts := DefaultOptions()
	opts.MaxIter = 30
	opts.EIStopFrac = 0
	opts.Seed = 9
	opts.MaxModelPoints = 12
	opts.HyperEvery = 5
	res := Minimize(Problem{Dim: 2, Eval: obj}, opts)
	if res.BestY > 0.05 {
		t.Fatalf("BestY = %v with capped model; want < 0.05", res.BestY)
	}
}

func TestContextIndexCountsInitSteps(t *testing.T) {
	// Problem.Context documents "counting every evaluation including warm
	// start": with k injected Init steps, the first fresh evaluation must be
	// iteration k, not 0 — otherwise a warm-started online session replays
	// the data-size schedule from the beginning.
	init := []Step{
		{X: []float64{0.1}, Ctx: []float64{0}, Y: 1},
		{X: []float64{0.2}, Ctx: []float64{1}, Y: 2},
		{X: []float64{0.3}, Ctx: []float64{2}, Y: 3},
	}
	var seen []int
	p := Problem{
		Dim:  1,
		Eval: sphere([]float64{0.5}),
		Context: func(it int) []float64 {
			seen = append(seen, it)
			return []float64{float64(it)}
		},
	}
	opts := DefaultOptions()
	opts.InitPoints = 2
	opts.MaxIter = 6
	opts.EIStopFrac = 0
	opts.Seed = 10
	opts.Init = init
	res := Minimize(p, opts)
	if res.Evals != 6 {
		t.Fatalf("Evals = %d; want 6", res.Evals)
	}
	for i, s := range res.History[len(init):] {
		want := float64(len(init) + i)
		if len(s.Ctx) != 1 || s.Ctx[0] != want {
			t.Fatalf("fresh evaluation %d got ctx %v; want [%v]", i, s.Ctx, want)
		}
	}
	for _, it := range seen {
		if it < len(init) {
			t.Fatalf("context index %d overlaps the injected Init steps", it)
		}
	}
}

func TestIncrementalModelsMatchRefit(t *testing.T) {
	// HyperEvery > 1 now keeps live GPs and appends observations
	// incrementally. Because the extended factor matches a fresh
	// factorization to rounding error, the run must still optimize and stay
	// deterministic.
	obj := sphere([]float64{0.25, 0.75})
	opts := DefaultOptions()
	opts.MaxIter = 30
	opts.EIStopFrac = 0
	opts.Seed = 11
	opts.HyperEvery = 5
	a := Minimize(Problem{Dim: 2, Eval: obj}, opts)
	b := Minimize(Problem{Dim: 2, Eval: obj}, opts)
	if a.BestY > 0.02 {
		t.Fatalf("incremental run BestY = %v; want < 0.02", a.BestY)
	}
	if a.BestY != b.BestY || a.Evals != b.Evals {
		t.Fatalf("incremental runs diverged: %v/%d vs %v/%d", a.BestY, a.Evals, b.BestY, b.Evals)
	}
	for i := range a.History {
		if a.History[i].Y != b.History[i].Y {
			t.Fatalf("history diverged at %d", i)
		}
	}
}

func TestEvalBatchMatchesSerial(t *testing.T) {
	// A batch evaluator that simply loops the serial objective must leave
	// the optimizer trajectory untouched: same history, same best, same EI
	// values. This is the contract core's parallel sample collection relies
	// on — the worker count only changes wall-clock time.
	obj := func(x, ctx []float64) float64 {
		d0, d1 := x[0]-0.3, x[1]-0.7
		return d0*d0 + d1*d1 + 0.1*x[0]*x[1] + 0.01*ctx[0]
	}
	// An iteration-dependent context: the batch path must hand EvalBatch the
	// same per-iteration contexts the serial loop computes right before each
	// Eval (a context that depends on anything but the iteration index would
	// be mislabeled by the precompute).
	ctxFn := func(it int) []float64 { return []float64{float64(it)} }
	opts := DefaultOptions()
	opts.MaxIter = 14
	opts.InitPoints = 6
	opts.EIStopFrac = 0
	opts.Seed = 12
	serial := Minimize(Problem{Dim: 2, Eval: obj, Context: ctxFn}, opts)

	batched := opts
	batched.EvalBatch = func(xs, ctxs [][]float64) []float64 {
		ys := make([]float64, len(xs))
		for i := range xs {
			ys[i] = obj(xs[i], ctxs[i])
		}
		return ys
	}
	par := Minimize(Problem{Dim: 2, Eval: obj, Context: ctxFn}, batched)

	if len(serial.History) != len(par.History) {
		t.Fatalf("history lengths differ: %d vs %d", len(serial.History), len(par.History))
	}
	for i := range serial.History {
		a, b := serial.History[i], par.History[i]
		if a.Y != b.Y || a.EI != b.EI {
			t.Fatalf("step %d diverged: %+v vs %+v", i, a, b)
		}
		for j := range a.X {
			if a.X[j] != b.X[j] {
				t.Fatalf("step %d decision diverged", i)
			}
		}
		if len(a.Ctx) != 1 || len(b.Ctx) != 1 || a.Ctx[0] != b.Ctx[0] || a.Ctx[0] != float64(i) {
			t.Fatalf("step %d context diverged: %v vs %v (want [%d])", i, a.Ctx, b.Ctx, i)
		}
	}
	if serial.BestY != par.BestY {
		t.Fatalf("best diverged: %v vs %v", serial.BestY, par.BestY)
	}
}

func TestEvalBatchShortReturnStops(t *testing.T) {
	// A batch evaluator that returns a prefix (evaluation cut short) must
	// leave a valid partial result rather than panicking or inventing steps.
	evals := 0
	obj := func(x, ctx []float64) float64 { evals++; return x[0] }
	opts := DefaultOptions()
	opts.InitPoints = 8
	opts.MaxIter = 8
	opts.Seed = 3
	stopNow := false
	opts.Stop = func() bool { return stopNow }
	opts.EvalBatch = func(xs, ctxs [][]float64) []float64 {
		ys := make([]float64, 3) // only 3 of 8 completed
		for i := range ys {
			ys[i] = obj(xs[i], ctxs[i])
		}
		stopNow = true
		return ys
	}
	res := Minimize(Problem{Dim: 1, Eval: obj}, opts)
	if res.Evals != 3 || len(res.History) != 3 {
		t.Fatalf("Evals=%d history=%d; want 3 each", res.Evals, len(res.History))
	}
	if evals != 3 {
		t.Fatalf("objective evaluated %d times, want 3", evals)
	}
}

// TestExpectedImprovementNegativeVariance is the regression test for the
// NaN leak: PredictBatch-style variances can come out as tiny negatives
// from floating-point cancellation, and math.Sqrt of one is a NaN that
// sails past the sigma guard and poisons the whole EI average. The clamp
// must treat them exactly like zero variance.
func TestExpectedImprovementNegativeVariance(t *testing.T) {
	for _, v := range []float64{0, -0.0, -1e-300, -1e-18, -1e-12} {
		got := expectedImprovement(1.0, v, 2.0) // mu below best: certain improvement
		if math.IsNaN(got) {
			t.Fatalf("EI(v=%g) is NaN", v)
		}
		if got != 1.0 {
			t.Fatalf("EI(v=%g) = %v; want exact improvement 1.0", v, got)
		}
		if got := expectedImprovement(3.0, v, 2.0); got != 0 {
			t.Fatalf("EI above best with v=%g = %v; want 0", v, got)
		}
	}
	// A NaN from a single candidate must not be able to win the argmax
	// either way — EI of healthy candidates stays comparable.
	if ei := expectedImprovement(1.5, 0.25, 2.0); math.IsNaN(ei) || ei <= 0 {
		t.Fatalf("healthy EI = %v", ei)
	}
}

// TestMinimizeWorkersDeterministic: the Workers knob fans the MCMC chains of
// every hyperparameter resample over a pool, and must not change a single
// step of the trajectory.
func TestMinimizeWorkersDeterministic(t *testing.T) {
	obj := sphere([]float64{0.35, 0.65})
	base := DefaultOptions()
	base.MaxIter = 18
	base.EIStopFrac = 0
	base.Seed = 21
	base.Workers = 1
	want := Minimize(Problem{Dim: 2, Eval: obj}, base)
	for _, workers := range []int{2, 4, 0} {
		opts := base
		opts.Workers = workers
		got := Minimize(Problem{Dim: 2, Eval: obj}, opts)
		if got.BestY != want.BestY || got.Evals != want.Evals {
			t.Fatalf("workers=%d diverged: %v/%d vs %v/%d", workers, got.BestY, got.Evals, want.BestY, want.Evals)
		}
		for i := range want.History {
			if got.History[i].Y != want.History[i].Y || got.History[i].EI != want.History[i].EI {
				t.Fatalf("workers=%d history diverged at %d", workers, i)
			}
		}
	}
}

// TestSeedTrajectoryPinned pins the optimizer trajectory for one seed: the
// stratified (Latin-Hypercube) EI candidate pool and the multi-chain
// hyperparameter sampler are deliberate behavior changes, and this golden
// value catches any future accidental one. Regenerate the constant if the
// proposal scheme changes on purpose.
func TestSeedTrajectoryPinned(t *testing.T) {
	obj := sphere([]float64{0.3, 0.7})
	opts := DefaultOptions()
	opts.MaxIter = 16
	opts.EIStopFrac = 0
	opts.Seed = 5
	res := Minimize(Problem{Dim: 2, Eval: obj}, opts)
	const wantBestY = 9.6597224023117392e-06
	if res.Evals != 16 {
		t.Fatalf("Evals = %d; want 16", res.Evals)
	}
	if math.Abs(res.BestY-wantBestY) > 1e-12 {
		t.Fatalf("pinned trajectory moved: BestY = %.17g, want %.17g", res.BestY, wantBestY)
	}
}
