package locat_test

import (
	"encoding/json"
	"math"
	"os"
	"testing"

	"locat"
)

// The committed fixtures under testdata/ pin two end-to-end trajectories:
// a quick TPC-H tuning session and a two-job warm-start service run. The
// tests replay them with the simulator fully detached (Backend
// "replay=…"), so they are hermetic: any divergence between the committed
// trace, the committed expectations and the current code fails loudly —
// either as an expectation mismatch here or as a trace-miss panic inside
// the replayer.
//
// Regenerate after an intentional behavior change with:
//
//	LOCAT_REGEN=1 go test -run TestCommittedTrace ./...
const (
	tuneTrace    = "testdata/tpch-quick.trace.gz"
	tuneExpected = "testdata/tpch-quick.expected.json"
	svcTrace     = "testdata/warmstart-service.trace.gz"
	svcExpected  = "testdata/warmstart-service.expected.json"
)

func regen() bool { return os.Getenv("LOCAT_REGEN") != "" }

// quickTuneOptions are the pinned session parameters of the tune fixture.
func quickTuneOptions(backend string) locat.Options {
	return locat.Options{
		Benchmark:     "TPC-H",
		DataSizeGB:    100,
		Seed:          1,
		NQCSA:         10,
		NIICP:         8,
		MaxIterations: 8,
		Quiet:         true,
		Backend:       backend,
	}
}

// tuneExpectation is the committed outcome of the tune fixture.
type tuneExpectation struct {
	BestParams  map[string]float64 `json:"best_params"`
	TunedSec    float64            `json:"tuned_sec"`
	DefaultSec  float64            `json:"default_sec"`
	OverheadSec float64            `json:"overhead_sec"`
	Runs        int                `json:"runs"`
}

func writeJSON(t *testing.T, path string, v any) {
	t.Helper()
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

func readJSON(t *testing.T, path string, v any) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate fixtures with LOCAT_REGEN=1 go test -run TestCommittedTrace ./...)", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatal(err)
	}
}

// close enough for JSON round-tripped float64s.
func feq(a, b float64) bool { return math.Abs(a-b) <= 1e-9*math.Max(1, math.Abs(a)+math.Abs(b)) }

// TestCommittedTraceReplayTune replays the committed tuning-session trace
// and pins the selected configuration and costs.
func TestCommittedTraceReplayTune(t *testing.T) {
	if regen() {
		res, err := locat.Tune(quickTuneOptions("record=" + tuneTrace))
		if err != nil {
			t.Fatal(err)
		}
		writeJSON(t, tuneExpected, tuneExpectation{
			BestParams:  res.BestParams,
			TunedSec:    res.TunedSeconds,
			DefaultSec:  res.DefaultSeconds,
			OverheadSec: res.OverheadSeconds,
			Runs:        res.Runs,
		})
		t.Logf("regenerated %s and %s", tuneTrace, tuneExpected)
	}

	var want tuneExpectation
	readJSON(t, tuneExpected, &want)
	res, err := locat.Tune(quickTuneOptions("replay=" + tuneTrace))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BestParams) != len(want.BestParams) {
		t.Fatalf("replay selected %d params, want %d", len(res.BestParams), len(want.BestParams))
	}
	for name, v := range want.BestParams {
		if got, ok := res.BestParams[name]; !ok || !feq(got, v) {
			t.Fatalf("replay selected %s=%v, committed expectation %v", name, res.BestParams[name], v)
		}
	}
	if !feq(res.TunedSeconds, want.TunedSec) {
		t.Fatalf("replay tuned cost %.6f, committed %.6f", res.TunedSeconds, want.TunedSec)
	}
	if !feq(res.DefaultSeconds, want.DefaultSec) {
		t.Fatalf("replay default cost %.6f, committed %.6f", res.DefaultSeconds, want.DefaultSec)
	}
	if !feq(res.OverheadSeconds, want.OverheadSec) {
		t.Fatalf("replay overhead %.6f, committed %.6f", res.OverheadSeconds, want.OverheadSec)
	}
	if res.Runs != want.Runs {
		t.Fatalf("replay executed %d runs, committed %d", res.Runs, want.Runs)
	}
}

// svcExpectation pins the warm-start service fixture: two sequential jobs,
// the second warm-started from the first via the history store.
type svcExpectation struct {
	Jobs []svcJob `json:"jobs"`
}

type svcJob struct {
	DataSizeGB  float64            `json:"data_size_gb"`
	Seed        int64              `json:"seed"`
	WarmStarted bool               `json:"warm_started"`
	BestParams  map[string]float64 `json:"best_params"`
	TunedSec    float64            `json:"tuned_sec"`
	OverheadSec float64            `json:"overhead_sec"`
}

// runServiceFixture executes the pinned two-job sequence on the backend.
func runServiceFixture(t *testing.T, backend string) []svcJob {
	t.Helper()
	svc, err := locat.NewService(locat.ServiceOptions{Workers: 1, Quiet: true, Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	var out []svcJob
	for _, job := range []struct {
		gb   float64
		seed int64
	}{{100, 1}, {140, 2}} {
		id, err := svc.Submit(locat.Options{
			Benchmark:     "TPC-H",
			DataSizeGB:    job.gb,
			Seed:          job.seed,
			NQCSA:         10,
			NIICP:         8,
			MaxIterations: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := svc.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, svcJob{
			DataSizeGB:  job.gb,
			Seed:        job.seed,
			WarmStarted: res.WarmStarted,
			BestParams:  res.BestParams,
			TunedSec:    res.TunedSeconds,
			OverheadSec: res.OverheadSeconds,
		})
	}
	return out
}

// TestCommittedTraceReplayService replays the committed warm-start service
// trace: the cold job repopulates the history store, the second job
// warm-starts from it, and both selections are pinned.
func TestCommittedTraceReplayService(t *testing.T) {
	if regen() {
		jobs := runServiceFixture(t, "record="+svcTrace)
		writeJSON(t, svcExpected, svcExpectation{Jobs: jobs})
		t.Logf("regenerated %s and %s", svcTrace, svcExpected)
	}

	var want svcExpectation
	readJSON(t, svcExpected, &want)
	got := runServiceFixture(t, "replay="+svcTrace)
	if len(got) != len(want.Jobs) {
		t.Fatalf("ran %d jobs, committed %d", len(got), len(want.Jobs))
	}
	for i, w := range want.Jobs {
		g := got[i]
		if g.WarmStarted != w.WarmStarted {
			t.Fatalf("job %d warm=%v, committed %v", i, g.WarmStarted, w.WarmStarted)
		}
		for name, v := range w.BestParams {
			if gv, ok := g.BestParams[name]; !ok || !feq(gv, v) {
				t.Fatalf("job %d selected %s=%v, committed %v", i, name, g.BestParams[name], v)
			}
		}
		if !feq(g.TunedSec, w.TunedSec) || !feq(g.OverheadSec, w.OverheadSec) {
			t.Fatalf("job %d cost (%.4f, %.4f), committed (%.4f, %.4f)",
				i, g.TunedSec, g.OverheadSec, w.TunedSec, w.OverheadSec)
		}
	}
	if len(got) > 1 && !got[1].WarmStarted {
		t.Fatal("second job did not warm-start")
	}
}

// A sparkrest backend whose gateway is unreachable must fail the session
// instead of reporting a zero-latency "result" built from failed runs.
func TestSparkRestBackendFailureFailsSession(t *testing.T) {
	o := quickTuneOptions("sparkrest=http://127.0.0.1:1")
	if _, err := locat.Tune(o); err == nil {
		t.Fatal("session against a dead gateway succeeded")
	}
}
