// hibench-tuning tunes all three HiBench SQL workloads and contrasts what
// the analysis stages find: Scan is configuration-insensitive (bounded by
// aggregate disk bandwidth), Join and Aggregation are shuffle-bound and
// reward memory/partition tuning — the Section 5.11 taxonomy on the
// smallest possible applications.
//
//	go run ./examples/hibench-tuning
package main

import (
	"fmt"
	"log"

	"locat"
)

func main() {
	for _, bench := range []string{"Scan", "Join", "Aggregation"} {
		res, err := locat.Tune(locat.Options{
			Benchmark:  bench,
			DataSizeGB: 300,
			Seed:       5,
		})
		if err != nil {
			log.Fatal(err)
		}
		speedup := res.DefaultSeconds / res.TunedSeconds
		fmt.Printf("%-12s default %6.0f s → tuned %6.0f s (%.2fx), overhead %5.1f h, %d important params\n",
			bench, res.DefaultSeconds, res.TunedSeconds, speedup,
			res.OverheadSeconds/3600, len(res.ImportantParams))
		for i, p := range res.ImportantParams {
			if i >= 5 {
				fmt.Printf("               … and %d more\n", len(res.ImportantParams)-5)
				break
			}
			fmt.Printf("               %-50s = %g\n", p, res.BestParams[p])
		}
	}
}
