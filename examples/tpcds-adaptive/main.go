// tpcds-adaptive demonstrates LOCAT's datasize-aware Gaussian process: the
// application's input grows while tuning is underway (the paper's core
// online scenario), observations taken at every size train one shared
// surrogate, and the returned configuration targets the final size without
// any re-tuning from scratch.
//
//	go run ./examples/tpcds-adaptive
package main

import (
	"fmt"
	"log"

	"locat"
)

func main() {
	// The warehouse grows from 100 GB to 500 GB while the tuner is
	// collecting samples — every run sees the size of "today's" data.
	growth := []float64{100, 100, 200, 200, 300, 300, 400, 400, 500}
	schedule := func(run int) float64 {
		if run >= len(growth) {
			return 500
		}
		return growth[run]
	}

	fmt.Println("Online tuning of TPC-DS while the input grows 100 → 500 GB")

	adaptive, err := locat.Tune(locat.Options{
		Benchmark:  "TPC-DS",
		DataSizeGB: 500, // the size we ultimately care about
		Schedule:   schedule,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Ablation: same online schedule but with the datasize feature removed
	// from the surrogate (a CherryPick-style configuration-only GP).
	blind, err := locat.Tune(locat.Options{
		Benchmark:   "TPC-DS",
		DataSizeGB:  500,
		Schedule:    schedule,
		Seed:        1,
		DisableDAGP: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("  with DAGP    : tuned 500 GB latency %.0f s (overhead %.1f h)\n",
		adaptive.TunedSeconds, adaptive.OverheadSeconds/3600)
	fmt.Printf("  without DAGP : tuned 500 GB latency %.0f s (overhead %.1f h)\n",
		blind.TunedSeconds, blind.OverheadSeconds/3600)
	fmt.Printf("  datasize-awareness gain: %.2fx\n",
		blind.TunedSeconds/adaptive.TunedSeconds)
	fmt.Printf("\n  key tuned values at 500 GB:\n")
	for _, p := range []string{
		"spark.sql.shuffle.partitions", "spark.executor.memory",
		"spark.executor.instances", "spark.memory.offHeap.size",
		"spark.shuffle.compress",
	} {
		fmt.Printf("    %-35s = %g\n", p, adaptive.BestParams[p])
	}
}
