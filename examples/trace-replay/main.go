// Trace record/replay demo: run a quick LOCAT tuning session on the
// simulator while recording every execution to a JSON-lines trace, then
// replay the trace with the simulator fully detached and verify that the
// replayed session selects the identical configuration at the identical
// cost — zero-execution re-tuning, and the mechanism behind the
// repository's hermetic CI fixtures.
//
//	go run ./examples/trace-replay
//	go run ./examples/trace-replay -trace sess.trace.gz -keep
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"reflect"

	"locat"
)

func main() {
	var (
		trace = flag.String("trace", "", "trace file (default: a temp file; .gz compresses)")
		keep  = flag.Bool("keep", false, "keep the trace file instead of deleting it")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	path := *trace
	if path == "" {
		path = filepath.Join(os.TempDir(), fmt.Sprintf("locat-demo-%d.trace.gz", os.Getpid()))
		defer func() {
			if !*keep {
				os.Remove(path)
			}
		}()
	}

	opts := locat.Options{
		Benchmark:     "TPC-H",
		DataSizeGB:    100,
		Seed:          *seed,
		NQCSA:         10,
		NIICP:         8,
		MaxIterations: 8,
		Quiet:         true,
	}

	fmt.Println("LOCAT execution-backend demo — trace record/replay")

	opts.Backend = "record=" + path
	recorded, err := locat.Tune(opts)
	if err != nil {
		log.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded: tuned %.0f s (default %.0f s) over %d runs → %s (%d bytes)\n",
		recorded.TunedSeconds, recorded.DefaultSeconds, recorded.Runs, path, fi.Size())

	opts.Backend = "replay=" + path
	replayed, err := locat.Tune(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed: tuned %.0f s over %d runs, zero cluster executions\n",
		replayed.TunedSeconds, replayed.Runs)

	if !reflect.DeepEqual(recorded.BestParams, replayed.BestParams) ||
		recorded.TunedSeconds != replayed.TunedSeconds ||
		recorded.OverheadSeconds != replayed.OverheadSeconds {
		log.Fatal("replay diverged from the recorded session")
	}
	fmt.Println("replay reproduced the recorded session's configuration and cost exactly")
}
