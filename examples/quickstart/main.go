// Quickstart: tune TPC-H on the simulated x86 cluster at 100 GB with the
// full LOCAT pipeline and print what the tuner found.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"locat"
)

func main() {
	res, err := locat.Tune(locat.Options{
		Cluster:    "x86",
		Benchmark:  "TPC-H",
		DataSizeGB: 100,
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("LOCAT quickstart — TPC-H @ 100 GB on the x86 cluster")
	fmt.Printf("  Spark defaults run the suite in %.0f s.\n", res.DefaultSeconds)
	fmt.Printf("  The tuned configuration runs it in %.0f s (%.2fx faster).\n",
		res.TunedSeconds, res.DefaultSeconds/res.TunedSeconds)
	fmt.Printf("  Finding it cost %.1f simulated cluster-hours across %d runs\n",
		res.OverheadSeconds/3600, res.Runs)
	fmt.Printf("  (wall-clock on this machine: %s).\n\n", res.Elapsed.Round(1e6))

	fmt.Printf("QCSA kept %d of 22 queries as configuration-sensitive:\n  %v\n\n",
		len(res.SensitiveQueries), res.SensitiveQueries)

	fmt.Printf("IICP narrowed tuning to %d important parameters:\n", len(res.ImportantParams))
	for _, p := range res.ImportantParams {
		fmt.Printf("  %-58s = %g\n", p, res.BestParams[p])
	}
}
