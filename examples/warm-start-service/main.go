// Warm-start service demo: run the tuning service in-process, tune TPC-H
// at 100 GB cold, then tune the neighboring 140 GB size and watch the
// second session warm-start from the history store — reusing the first
// session's observations, sensitive queries and important parameters — at a
// fraction of the optimization time.
//
//	go run ./examples/warm-start-service
//	go run ./examples/warm-start-service -quick -backend replay=testdata/warmstart-service.trace.gz
package main

import (
	"flag"
	"fmt"
	"log"

	"locat"
)

func main() {
	var (
		backend = flag.String("backend", "", "execution backend: sim (default), record=PATH, replay=PATH, sparkrest=URL")
		quick   = flag.Bool("quick", false, "reduced budgets for a fast pass")
	)
	flag.Parse()

	svc, err := locat.NewService(locat.ServiceOptions{Workers: 2, Quiet: true, Backend: *backend})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	tune := func(gb float64, seed int64) *locat.Result {
		o := locat.Options{
			Benchmark:  "TPC-H",
			DataSizeGB: gb,
			Seed:       seed,
		}
		if *quick {
			o.NQCSA, o.NIICP, o.MaxIterations = 10, 8, 8
		}
		id, err := svc.Submit(o)
		if err != nil {
			log.Fatal(err)
		}
		res, err := svc.Result(id)
		if err != nil {
			log.Fatal(err)
		}
		kind := "cold"
		if res.WarmStarted {
			kind = "warm"
		}
		fmt.Printf("%s @ %.0f GB (%s): tuned %.0f s (default %.0f s), overhead %.1f h "+
			"(%.1f h sampling + %.1f h search) over %d runs\n",
			id, gb, kind, res.TunedSeconds, res.DefaultSeconds,
			res.OverheadSeconds/3600, res.SamplingSeconds/3600, res.SearchSeconds/3600, res.Runs)
		return res
	}

	fmt.Println("LOCAT tuning service — cross-session warm start")
	cold := tune(100, 1)
	warm := tune(140, 2)

	fmt.Printf("\nThe warm session spent %.1f h of simulated cluster time vs %.1f h cold —\n"+
		"%.0f%% of the optimization cost, because the history store supplied the\n"+
		"phase-1 samples the paper's pipeline would have re-collected.\n",
		warm.OverheadSeconds/3600, cold.OverheadSeconds/3600,
		100*warm.OverheadSeconds/cold.OverheadSeconds)

	hist, err := svc.History()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nHistory store now holds:")
	for _, h := range hist {
		fmt.Printf("  %s  job=%s  target=%.0f GB  obs=%d\n",
			h.Key, h.JobID, h.TargetGB, h.Observations)
	}
}
