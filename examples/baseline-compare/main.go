// baseline-compare reruns the paper's headline comparison on one problem:
// LOCAT versus Tuneful, DAC, GBO-RL and QTune on HiBench Aggregation at
// 200 GB (ARM cluster). The quantity to watch is the optimization overhead —
// the simulated cluster time each tuner burns before it hands back a
// configuration.
//
//	go run ./examples/baseline-compare
package main

import (
	"fmt"
	"log"

	"locat"
)

func main() {
	o := locat.Options{
		Cluster:    "arm",
		Benchmark:  "Aggregation",
		DataSizeGB: 200,
		Seed:       11,
	}

	res, err := locat.Tune(o)
	if err != nil {
		log.Fatal(err)
	}
	rs, err := locat.CompareBaselines(o)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("HiBench Aggregation @ 200 GB, ARM cluster")
	fmt.Printf("%-8s %12s %14s %6s %18s\n", "tuner", "tuned (s)", "overhead (h)", "runs", "LOCAT time saving")
	fmt.Printf("%-8s %12.0f %14.1f %6d %18s\n",
		"LOCAT", res.TunedSeconds, res.OverheadSeconds/3600, res.Runs, "—")
	for _, r := range rs {
		fmt.Printf("%-8s %12.0f %14.1f %6d %17.1fx\n",
			r.Tuner, r.TunedSeconds, r.OverheadSeconds/3600, r.Runs,
			r.OverheadSeconds/res.OverheadSeconds)
	}
}
