// Package locat is a from-scratch Go reproduction of LOCAT — the
// low-overhead online configuration auto-tuner for Spark SQL applications of
// Xin, Hwang and Yu (SIGMOD 2022) — together with every substrate the
// paper's evaluation depends on: an analytical Spark SQL cluster simulator
// (standing in for the paper's ARM and x86 clusters, see DESIGN.md),
// the TPC-DS / TPC-H / HiBench workload profiles, a Gaussian-process
// Bayesian-optimization stack, kernel PCA, and reimplementations of the
// four baseline tuners (Tuneful, DAC, GBO-RL, QTune).
//
// The package is the public facade. A minimal session:
//
//	res, err := locat.Tune(locat.Options{
//		Cluster:    "x86",
//		Benchmark:  "TPC-H",
//		DataSizeGB: 100,
//	})
//
// res.BestParams maps Spark property names to tuned values; res.Overhead
// reports the simulated cluster time the tuning consumed — the quantity the
// paper calls optimization time.
//
// The paper's three techniques can be toggled individually (DisableQCSA,
// DisableIICP, DisableDAGP) for ablation, the input data size may change
// while tuning (Schedule) to exercise the datasize-aware Gaussian process,
// and CompareBaselines runs the four SOTA tuners on the same problem.
//
// For long-running deployments, NewService starts a tuning service: a
// bounded pool of concurrent sessions with a history store that
// warm-starts jobs for workloads similar to past ones, and an HTTP facade
// (see cmd/locat-serve) exposing submit / status / result / cancel and the
// history over JSON.
package locat

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"time"

	"locat/internal/baselines"
	"locat/internal/conf"
	"locat/internal/core"
	"locat/internal/obs"
	"locat/internal/progress"
	"locat/internal/runner"
	"locat/internal/sparksim"
	"locat/internal/workloads"
)

// Options configure a tuning session.
type Options struct {
	// Cluster selects the simulated hardware: "arm" (four-node KUNPENG,
	// 384 executor cores) or "x86" (eight-node Xeon, 140 executor cores).
	// Default "arm".
	Cluster string
	// Benchmark is one of Benchmarks(): "TPC-DS", "TPC-H", "Join", "Scan",
	// "Aggregation". Default "TPC-DS".
	Benchmark string
	// DataSizeGB is the target input size the tuned configuration is
	// optimized and evaluated for. Default 100.
	DataSizeGB float64
	// Schedule, if non-nil, supplies the input size of each tuning run —
	// the paper's online scenario where data grows while the application
	// keeps running. The DAGP transfers observations across sizes.
	Schedule func(run int) float64
	// Seed makes the session reproducible. Default 1.
	Seed int64
	// NQCSA and NIICP override the paper's sample counts (30 and 20).
	NQCSA, NIICP int
	// MaxIterations caps the post-IICP Bayesian-optimization runs.
	MaxIterations int
	// DisableQCSA, DisableIICP and DisableDAGP switch off LOCAT's three
	// techniques for ablation studies.
	DisableQCSA, DisableIICP, DisableDAGP bool
	// Quiet suppresses the progress log. By default Tune (and the Service)
	// reports phase transitions, sample counts and the stop condition on
	// stderr; Quiet silences all of it.
	Quiet bool
	// ColdStart opts a Service job out of history retrieval: the session
	// runs the full sampling pipeline even when similar past sessions
	// exist. Useful as a control when measuring what warm starts save, and
	// for re-validating a workload from scratch. Ignored by Tune, which
	// never consults a history store.
	ColdStart bool
	// Tenant attributes a Service job to a tenant for per-tenant budget
	// enforcement (ServiceOptions.Tenants). Empty is the anonymous tenant.
	// Tenants do not partition the history store — warm-start sharing
	// across tenants is deliberate. Ignored by Tune.
	Tenant string
	// Priority is a Service job's scheduling class: "interactive"
	// dispatches ahead of "batch" (the default) and is never shed under
	// overload. Ignored by Tune.
	Priority string
	// DeadlineSec, when positive, bounds a Service job's wall-clock session
	// time: past the deadline the session stops at the next evaluation
	// boundary and returns its best-so-far configuration as a Degraded
	// result. Ignored by Tune.
	DeadlineSec float64
	// MaxClusterSec, when positive, bounds the simulated cluster seconds a
	// Service job may spend tuning — the deterministic twin of DeadlineSec.
	// Exceeding it degrades the result, like a deadline. Ignored by Tune.
	MaxClusterSec float64
	// Parallelism bounds the goroutines used for the session's parallel
	// work: the concurrent execution slots of independent sample-collection
	// runs (phase-1 LHS samples, warm-start anchors) and the MCMC chains of
	// every GP hyperparameter resample. 0 uses all CPU cores, 1 runs
	// serially. The result is identical for every setting — each run's noise
	// and each chain's randomness derive from its index, not from execution
	// order — so this only trades wall-clock time for CPU.
	Parallelism int
	// Backend selects the execution backend (see internal/runner):
	//
	//	""  or "sim"               the analytical cluster simulator
	//	"record=PATH"              simulator + trace recording to PATH
	//	"replay=PATH[,miss=nearest[,tol=T]]"
	//	                           deterministic replay of a recorded trace,
	//	                           with the simulator fully detached
	//	"sparkrest=URL"            spark-submit/REST gateway submissions
	//
	// Replaying a recorded session reproduces its chosen configuration and
	// cost exactly; a replay that requests an execution absent from the
	// trace fails hard under the default miss policy.
	Backend string
	// Chaos, when non-empty, wraps the backend in deterministic fault
	// injection plus the healing retry/circuit-breaker layer — the
	// resilience-testing harness. The spec is runner.ParseChaosSpec syntax,
	// e.g. "drop=0.3,maxfail=2,seed=7": each injected fault is a pure
	// function of (seed, run index, attempt), so a chaotic session is
	// exactly reproducible. While the drop ceiling (maxfail) stays under
	// the retry budget every fault heals and the tuned configuration is
	// bit-identical to a fault-free session's; a sticky backend death
	// instead degrades the session (see Result.Degraded).
	Chaos string
}

// Result is the outcome of a tuning session.
type Result struct {
	// BestParams maps Spark property names to the tuned values. Boolean
	// properties use 1 (true) / 0 (false).
	BestParams map[string]float64
	// TunedSeconds is the noiseless benchmark latency under the tuned
	// configuration at the target size.
	TunedSeconds float64
	// DefaultSeconds is the latency under Spark defaults, for reference.
	DefaultSeconds float64
	// OverheadSeconds is the simulated cluster time consumed by tuning
	// (the paper's optimization time). It splits into SamplingSeconds
	// (phase-1 full-application sample collection) and SearchSeconds
	// (phase-2 subspace optimization on the reduced query application).
	OverheadSeconds float64
	SamplingSeconds float64
	SearchSeconds   float64
	// WarmStarted reports whether the session was seeded with observations
	// from similar past sessions instead of collecting the full sample set
	// (always false for a direct Tune call; the Service sets it).
	WarmStarted bool
	// Runs is the number of tuning executions (full application + RQA).
	Runs int
	// SensitiveQueries lists the configuration-sensitive queries QCSA kept
	// (nil when QCSA is disabled).
	SensitiveQueries []string
	// ImportantParams lists the parameters IICP selected for tuning
	// (nil when IICP is disabled).
	ImportantParams []string
	// Degraded, when non-empty, records that the execution backend died
	// mid-session and why. The session still returns the best configuration
	// it measured before death — never worse than the defaults, thanks to
	// the fallback guardrail — instead of failing.
	Degraded string
	// FellBack reports that the final-selection guardrail replaced the
	// session's choice with the Spark defaults because the choice evaluated
	// worse at the target size.
	FellBack bool
	// Elapsed is the wall-clock time of the session.
	Elapsed time.Duration
	// Phases is the session's timeline, one entry per pipeline phase in
	// execution order (repeated GP hyperparameter resamples are merged into
	// one entry): where the wall-clock time, the simulated cluster seconds
	// and the runs went.
	Phases []Phase

	best conf.Config
}

// Phase is one pipeline phase's share of a tuning session: "phase1/sampling"
// (or "phase1/warm-anchors" for warm starts), "qcsa/reduce",
// "dagp/select-base", "iicp/select", "phase2/search", "gp/hyper-resample"
// and "final/select".
type Phase struct {
	// Name identifies the phase.
	Name string
	// WallSeconds is the host wall-clock time the phase took.
	WallSeconds float64
	// ClusterSeconds is the simulated cluster time charged to the phase
	// (zero for pure-compute phases like the QCSA reduction).
	ClusterSeconds float64
	// Runs is the number of executions the phase issued.
	Runs int64
}

// SparkConf renders the tuned configuration in spark-defaults.conf syntax,
// ready to drop into a cluster's conf directory.
func (r *Result) SparkConf() string {
	var b strings.Builder
	// FormatSparkConf only errors on malformed configs, which Tune never
	// produces.
	_ = conf.FormatSparkConf(&b, r.best)
	return b.String()
}

// Benchmarks returns the supported benchmark names (Table 1).
func Benchmarks() []string {
	return []string{"TPC-DS", "TPC-H", "Join", "Scan", "Aggregation"}
}

// Clusters returns the supported cluster names.
func Clusters() []string { return []string{"arm", "x86"} }

// clusterByName resolves a cluster name.
func clusterByName(name string) (*sparksim.Cluster, error) {
	switch name {
	case "", "arm":
		return sparksim.ARM(), nil
	case "x86":
		return sparksim.X86(), nil
	}
	return nil, fmt.Errorf("locat: unknown cluster %q (want arm or x86)", name)
}

func (o *Options) normalize() error {
	if o.Benchmark == "" {
		o.Benchmark = "TPC-DS"
	}
	if o.DataSizeGB == 0 {
		o.DataSizeGB = 100
	}
	if o.DataSizeGB < 0 {
		return errors.New("locat: negative data size")
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return nil
}

// Tune runs the full LOCAT pipeline (QCSA → IICP → BO with DAGP) and
// returns the tuned configuration and its cost accounting.
func Tune(o Options) (*Result, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	cl, err := clusterByName(o.Cluster)
	if err != nil {
		return nil, err
	}
	app, err := workloads.ByName(o.Benchmark)
	if err != nil {
		return nil, err
	}
	factory, err := runner.ParseSpec(o.Backend)
	if err != nil {
		return nil, err
	}
	// Close is idempotent; the deferred call covers error paths so a
	// recording backend never leaks its sink, while the explicit Close
	// below surfaces flush errors on success.
	defer factory.Close()
	run, err := factory.New(cl, o.Seed, "tune")
	if err != nil {
		return nil, err
	}
	if o.Chaos != "" {
		chaos, err := runner.ParseChaosSpec(o.Chaos)
		if err != nil {
			return nil, err
		}
		// Injection below, healing above: drops and delays surface to the
		// retry wrapper, which re-executes at the same run index — so a
		// healed run's result is identical to a never-faulted one.
		run = runner.NewRetrying(runner.NewChaos(run, *chaos), runner.RetryOptions{Seed: o.Seed})
	}

	opts := core.DefaultOptions()
	opts.Seed = o.Seed
	if o.NQCSA > 0 {
		opts.NQCSA = o.NQCSA
	}
	if o.NIICP > 0 {
		opts.NIICP = o.NIICP
	}
	if o.MaxIterations > 0 {
		opts.MaxIter = o.MaxIterations
	}
	opts.UseQCSA = !o.DisableQCSA
	opts.UseIICP = !o.DisableIICP
	opts.UseDAGP = !o.DisableDAGP
	opts.DataSchedule = o.Schedule
	opts.Workers = o.Parallelism
	if !o.Quiet {
		opts.Logf = progress.New(os.Stderr, "locat:")
	}
	timeline := obs.NewTimeline()
	opts.Tracer = timeline

	start := time.Now()
	rep, err := core.New(run, app, opts).Tune(o.DataSizeGB)
	if err != nil {
		return nil, err
	}
	// A degraded report already accounts for the backend failure — the
	// session recommends the best configuration observed before death
	// instead of erroring out.
	if rep.Degraded == "" {
		if err := runner.BackendErr(run); err != nil {
			return nil, fmt.Errorf("locat: execution backend failed: %w", err)
		}
	}

	res := &Result{
		best:            rep.Best,
		BestParams:      paramsToMap(rep.Best),
		TunedSeconds:    rep.TunedSec,
		DefaultSeconds:  run.NoiselessAppTime(app, cl.Space().Default(), o.DataSizeGB),
		OverheadSeconds: rep.OverheadSec,
		SamplingSeconds: rep.SamplingSec,
		SearchSeconds:   rep.SearchSec,
		WarmStarted:     rep.WarmStarted,
		Degraded:        rep.Degraded,
		FellBack:        rep.FellBack,
		Runs:            rep.Evaluations(),
		Elapsed:         time.Since(start),
		Phases:          phasesOf(timeline.Snapshot()),
	}
	if rep.QCSA != nil {
		res.SensitiveQueries = append([]string(nil), rep.QCSA.Sensitive...)
	}
	if rep.IICP != nil {
		params := conf.Params()
		for _, j := range rep.IICP.Important {
			res.ImportantParams = append(res.ImportantParams, params[j].Name)
		}
	}
	if err := factory.Close(); err != nil {
		return nil, fmt.Errorf("locat: closing backend: %w", err)
	}
	return res, nil
}

// BaselineResult is one SOTA tuner's outcome on the same problem.
type BaselineResult struct {
	// Tuner is "Tuneful", "DAC", "GBO-RL" or "QTune".
	Tuner string
	// TunedSeconds and OverheadSeconds mirror Result.
	TunedSeconds    float64
	OverheadSeconds float64
	// Runs is the number of full-application executions.
	Runs int
}

// CompareBaselines tunes the same (cluster, benchmark, size) problem with
// the four state-of-the-art baseline tuners the paper compares against.
func CompareBaselines(o Options) ([]BaselineResult, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	cl, err := clusterByName(o.Cluster)
	if err != nil {
		return nil, err
	}
	app, err := workloads.ByName(o.Benchmark)
	if err != nil {
		return nil, err
	}
	factory, err := runner.ParseSpec(o.Backend)
	if err != nil {
		return nil, err
	}
	defer factory.Close()
	var out []BaselineResult
	for _, bt := range baselines.All() {
		run, err := factory.New(cl, o.Seed, "baseline/"+bt.Name())
		if err != nil {
			return nil, err
		}
		rep, err := bt.Tune(run, app, o.DataSizeGB, o.Seed+7)
		if err != nil {
			return nil, err
		}
		if err := runner.BackendErr(run); err != nil {
			return nil, fmt.Errorf("locat: execution backend failed: %w", err)
		}
		out = append(out, BaselineResult{
			Tuner:           rep.Tuner,
			TunedSeconds:    rep.TunedSec,
			OverheadSeconds: rep.OverheadSec,
			Runs:            rep.Runs,
		})
	}
	if err := factory.Close(); err != nil {
		return nil, fmt.Errorf("locat: closing backend: %w", err)
	}
	return out, nil
}

// phasesOf maps recorded spans onto the public phase timeline, merging
// repeated spans by name.
func phasesOf(spans []obs.SpanRecord) []Phase {
	agg := obs.Aggregate(spans)
	out := make([]Phase, 0, len(agg))
	for _, sp := range agg {
		out = append(out, Phase{
			Name:           sp.Name,
			WallSeconds:    sp.WallMS / 1000,
			ClusterSeconds: sp.ClusterSec,
			Runs:           sp.Runs,
		})
	}
	return out
}

// paramsToMap converts a configuration vector to a name→value map.
func paramsToMap(c conf.Config) map[string]float64 {
	out := make(map[string]float64, len(c))
	for i, p := range conf.Params() {
		out[p.Name] = c[i]
	}
	return out
}
