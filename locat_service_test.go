package locat

import (
	"io"
	"os"
	"strings"
	"testing"
)

func TestServiceFacade(t *testing.T) {
	svc, err := NewService(ServiceOptions{Workers: 2, Quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// Cold job.
	o := fastOpts()
	idA, err := svc.Submit(o)
	if err != nil {
		t.Fatal(err)
	}
	st, err := svc.Status(idA)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != idA || st.State.Terminal() && st.State != JobState("succeeded") {
		t.Fatalf("early status %+v", st)
	}
	resA, err := svc.Result(idA)
	if err != nil {
		t.Fatal(err)
	}
	if resA.WarmStarted {
		t.Fatal("first job warm")
	}
	if len(resA.BestParams) != 38 || resA.TunedSeconds >= resA.DefaultSeconds {
		t.Fatalf("degenerate result %+v", resA)
	}
	if resA.SamplingSeconds <= 0 || resA.SearchSeconds <= 0 {
		t.Fatal("missing per-phase overhead")
	}
	if resA.SparkConf() == "" {
		t.Fatal("service result cannot render spark-defaults.conf")
	}
	if len(resA.Phases) == 0 {
		t.Fatal("service result missing phase timeline")
	}

	// Neighboring-size job warm-starts from job A's cross-size history (the
	// only entry that exists when it runs), and costs less than the same
	// job run cold: the ColdStart control — submitted afterwards so it
	// cannot feed B an exact-size prior — holds workload, size and seed
	// fixed, so the comparison isn't confounded by the different input size
	// and seed the way comparing against job A would be.
	o2 := fastOpts()
	o2.DataSizeGB = 140
	o2.Seed = 4
	idB, err := svc.Submit(o2)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := svc.Result(idB)
	if err != nil {
		t.Fatal(err)
	}
	if !resB.WarmStarted {
		t.Fatal("neighboring-size job not warm-started")
	}
	oCtl := o2
	oCtl.ColdStart = true
	idCtl, err := svc.Submit(oCtl)
	if err != nil {
		t.Fatal(err)
	}
	resCtl, err := svc.Result(idCtl)
	if err != nil {
		t.Fatal(err)
	}
	if resCtl.WarmStarted {
		t.Fatal("ColdStart control consumed history")
	}
	if resB.OverheadSeconds >= resCtl.OverheadSeconds {
		t.Fatalf("warm overhead %.0f not below the cold control's %.0f",
			resB.OverheadSeconds, resCtl.OverheadSeconds)
	}

	// History and job listing reflect all three sessions (the ColdStart
	// control skips retrieval, not persistence).
	hist, err := svc.History()
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 3 {
		t.Fatalf("history %+v, want 3 entries", hist)
	}
	jobs := svc.Jobs()
	if len(jobs) != 3 || jobs[0].ID != idA || jobs[1].ID != idB || jobs[2].ID != idCtl {
		t.Fatalf("job listing %+v", jobs)
	}
	for _, j := range jobs {
		if j.State != JobState("succeeded") || j.Fingerprint == "" {
			t.Fatalf("job %+v", j)
		}
	}
}

func TestServiceRejectsSchedule(t *testing.T) {
	svc, err := NewService(ServiceOptions{Workers: 1, Quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	o := fastOpts()
	o.Schedule = func(run int) float64 { return 100 }
	if _, err := svc.Submit(o); err == nil {
		t.Fatal("Schedule accepted by the service")
	}
}

// TestQuietControlsProgressLog verifies the Quiet option actually gates the
// progress logger (it was a documented no-op before the logger existed).
func TestQuietControlsProgressLog(t *testing.T) {
	captureStderr := func(f func()) string {
		old := os.Stderr
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		os.Stderr = w
		done := make(chan string)
		go func() {
			data, _ := io.ReadAll(r)
			done <- string(data)
		}()
		f()
		w.Close()
		os.Stderr = old
		return <-done
	}

	o := Options{Benchmark: "Scan", NQCSA: 6, NIICP: 5, MaxIterations: 5, Seed: 9}

	o.Quiet = true
	quiet := captureStderr(func() {
		if _, err := Tune(o); err != nil {
			t.Fatal(err)
		}
	})
	if strings.Contains(quiet, "phase") {
		t.Fatalf("Quiet session logged progress: %q", quiet)
	}

	o.Quiet = false
	loud := captureStderr(func() {
		if _, err := Tune(o); err != nil {
			t.Fatal(err)
		}
	})
	if !strings.Contains(loud, "phase 1") || !strings.Contains(loud, "locat:") {
		t.Fatalf("non-Quiet session logged nothing useful: %q", loud)
	}
}
