package locat_test

import (
	"os"
	"path/filepath"
	"testing"

	"locat"
)

// testdata/history-seed is a committed history store: two finished quick
// TPC-H sessions (100 and 140 GB) plus their persisted k-NN index, produced
// by a deterministic service run on the simulator. CI serves it with
// locat-serve and asserts that POST /v1/recommend answers from retrieval
// alone — a hit with zero executed runs.
//
// Regenerate after an intentional behavior change with:
//
//	LOCAT_REGEN=1 go test -run TestCommittedHistorySeed ./...
const historySeedDir = "testdata/history-seed"

// seedOptions are the pinned session parameters of the history fixture
// (quickTuneOptions at a parameterized size and seed).
func seedOptions(gb float64, seed int64) locat.Options {
	return locat.Options{
		Benchmark:     "TPC-H",
		DataSizeGB:    gb,
		Seed:          seed,
		NQCSA:         10,
		NIICP:         8,
		MaxIterations: 8,
		Quiet:         true,
	}
}

func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatalf("%v (regenerate the fixture with LOCAT_REGEN=1 go test -run TestCommittedHistorySeed ./...)", err)
	}
	for _, de := range entries {
		sp, dp := filepath.Join(src, de.Name()), filepath.Join(dst, de.Name())
		if de.IsDir() {
			if err := os.MkdirAll(dp, 0o755); err != nil {
				t.Fatal(err)
			}
			copyTree(t, sp, dp)
			continue
		}
		data, err := os.ReadFile(sp)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dp, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCommittedHistorySeedRecommend pins the zero-execution path end to end:
// the committed store answers a 120 GB request from its two stored sessions
// with a confident hit, without a tuning service, worker pool or backend in
// sight.
func TestCommittedHistorySeedRecommend(t *testing.T) {
	if regen() {
		if err := os.RemoveAll(historySeedDir); err != nil {
			t.Fatal(err)
		}
		svc, err := locat.NewService(locat.ServiceOptions{Workers: 1, HistoryDir: historySeedDir, Quiet: true})
		if err != nil {
			t.Fatal(err)
		}
		for i, gb := range []float64{100, 140} {
			id, err := svc.Submit(seedOptions(gb, int64(i+1)))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := svc.Result(id); err != nil {
				t.Fatal(err)
			}
		}
		svc.Close()
		t.Logf("regenerated %s", historySeedDir)
	}

	// Recommend from a copy: retrieval is read-only in spirit, but a stale
	// index would be rewritten in place, and a test must never dirty the
	// committed fixture.
	dir := t.TempDir()
	copyTree(t, historySeedDir, dir)
	rec, err := locat.RecommendFromHistory(dir, seedOptions(120, 9), locat.RecommendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Outcome != "hit" || len(rec.Neighbors) != 2 {
		t.Fatalf("seeded recommend: outcome %q with %d neighbors (confidence %.2f)",
			rec.Outcome, len(rec.Neighbors), rec.Confidence)
	}
	if len(rec.BestParams) == 0 || rec.SparkConf == "" || rec.EstimatedSeconds <= 0 {
		t.Fatalf("hit served no configuration: %+v", rec)
	}
	// Distances are deterministic functions of the committed entries and
	// arrive nearest first. (The 100 GB session wins despite 140 being
	// size-closer: the warm-started 140 GB session ran fewer full
	// applications, and the observation-deficit dimension prices that in.)
	if rec.Neighbors[0].Distance > rec.Neighbors[1].Distance {
		t.Fatalf("neighbors not nearest-first: %+v", rec.Neighbors)
	}
}
