package main

import (
	"io"
	"reflect"
	"strings"
	"testing"

	"locat"
)

func TestParseFlagsDefaults(t *testing.T) {
	c, err := parseFlags(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if c.addr != ":8080" || c.pprofOn {
		t.Fatalf("defaults: addr=%q pprof=%v", c.addr, c.pprofOn)
	}
	want := locat.ServiceOptions{Workers: 2}
	if !reflect.DeepEqual(c.opts, want) {
		t.Fatalf("default options = %+v, want %+v", c.opts, want)
	}
}

func TestParseFlagsTenants(t *testing.T) {
	c, err := parseFlags([]string{
		"-tenant", "acme:max_inflight=4,rate=2.5,burst=5,max_cluster_sec=1e6",
		"-tenant", "*:max_inflight=8",
		"-tenant", "vip",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]locat.TenantBudget{
		"acme": {MaxInFlight: 4, SubmitRate: 2.5, SubmitBurst: 5, MaxClusterSec: 1e6},
		"*":    {MaxInFlight: 8},
		"vip":  {},
	}
	if !reflect.DeepEqual(c.opts.Tenants, want) {
		t.Fatalf("tenants = %+v, want %+v", c.opts.Tenants, want)
	}
}

func TestParseFlagsRejectsBadTenants(t *testing.T) {
	for _, v := range []string{
		"",                    // empty name
		":max_inflight=4",     // empty name with spec
		"acme:max_inflight",   // not key=value
		"acme:rate=-1",        // negative budget
		"acme:bogus=1",        // unknown key
		"acme:max_inflight=x", // not a number
	} {
		if _, err := parseFlags([]string{"-tenant", v}, io.Discard); err == nil {
			t.Errorf("parseFlags(-tenant %q) accepted", v)
		}
	}
	if _, err := parseFlags([]string{"-tenant", "a:rate=1", "-tenant", "a:rate=2"}, io.Discard); err == nil {
		t.Error("duplicate -tenant accepted")
	}
}

func TestParseFlagsFaultTolerance(t *testing.T) {
	c, err := parseFlags([]string{
		"-store", "/tmp/hist",
		"-resume",
		"-max-queue", "16",
		"-job-retries", "3",
		"-chaos", "drop=0.3,maxfail=2,seed=7",
		"-workers", "4",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	o := c.opts
	if !o.Resume || o.QueueCap != 16 || o.JobRetries != 3 ||
		o.Chaos != "drop=0.3,maxfail=2,seed=7" || o.HistoryDir != "/tmp/hist" || o.Workers != 4 {
		t.Fatalf("options = %+v", o)
	}
}

func TestParseFlagsRejectsBadValues(t *testing.T) {
	for _, args := range [][]string{
		{"-max-queue", "-1"},
		{"-job-retries", "-2"},
		{"-resume"}, // without -store there is nothing to resume from
		{"-no-such-flag"},
	} {
		if _, err := parseFlags(args, io.Discard); err == nil {
			t.Errorf("parseFlags(%v) accepted", args)
		}
	}
}

// The chaos spec is validated when the service starts, so a typo fails the
// process instead of silently tuning without fault injection.
func TestChaosSpecRejectedAtStartup(t *testing.T) {
	c, err := parseFlags([]string{"-chaos", "bogus=1"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := locat.NewService(c.opts); err == nil || !strings.Contains(err.Error(), "chaos") {
		t.Fatalf("NewService error = %v; want chaos-spec rejection", err)
	}
}
