package main

import (
	"io"
	"strings"
	"testing"

	"locat"
)

func TestParseFlagsDefaults(t *testing.T) {
	c, err := parseFlags(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if c.addr != ":8080" || c.pprofOn {
		t.Fatalf("defaults: addr=%q pprof=%v", c.addr, c.pprofOn)
	}
	want := locat.ServiceOptions{Workers: 2}
	if c.opts != want {
		t.Fatalf("default options = %+v, want %+v", c.opts, want)
	}
}

func TestParseFlagsFaultTolerance(t *testing.T) {
	c, err := parseFlags([]string{
		"-store", "/tmp/hist",
		"-resume",
		"-max-queue", "16",
		"-job-retries", "3",
		"-chaos", "drop=0.3,maxfail=2,seed=7",
		"-workers", "4",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	o := c.opts
	if !o.Resume || o.QueueCap != 16 || o.JobRetries != 3 ||
		o.Chaos != "drop=0.3,maxfail=2,seed=7" || o.HistoryDir != "/tmp/hist" || o.Workers != 4 {
		t.Fatalf("options = %+v", o)
	}
}

func TestParseFlagsRejectsBadValues(t *testing.T) {
	for _, args := range [][]string{
		{"-max-queue", "-1"},
		{"-job-retries", "-2"},
		{"-resume"}, // without -store there is nothing to resume from
		{"-no-such-flag"},
	} {
		if _, err := parseFlags(args, io.Discard); err == nil {
			t.Errorf("parseFlags(%v) accepted", args)
		}
	}
}

// The chaos spec is validated when the service starts, so a typo fails the
// process instead of silently tuning without fault injection.
func TestChaosSpecRejectedAtStartup(t *testing.T) {
	c, err := parseFlags([]string{"-chaos", "bogus=1"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := locat.NewService(c.opts); err == nil || !strings.Contains(err.Error(), "chaos") {
		t.Fatalf("NewService error = %v; want chaos-spec rejection", err)
	}
}
