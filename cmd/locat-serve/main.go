// Command locat-serve runs the LOCAT tuning service: a long-running HTTP
// server with a pool of concurrent tuning sessions and a persistent
// history store that warm-starts sessions for workloads similar to past
// ones. With -store, interrupted jobs checkpoint to disk and -resume
// requeues them on restart without re-paying completed sample runs.
//
// Usage:
//
//	locat-serve -addr :8080 -store ./locat-history -workers 4 -resume
//	locat-serve -tenant 'acme:max_inflight=4,rate=2' -tenant '*:max_inflight=8'
//
// -tenant (repeatable) sets per-tenant admission budgets; the "*" entry
// applies to every tenant without one. Over-budget submissions get 429 with
// a Retry-After header. Jobs carry "tenant", "priority" ("interactive"
// dispatches first and is never shed; "batch" is the default),
// "deadline_sec" and "max_cluster_sec" in their spec.
//
// API (JSON unless noted; errors are {"error":{"code","message"}}):
//
//	POST   /v1/jobs            submit {"cluster","benchmark","data_size_gb",...}
//	                           (422 invalid spec, 429 + Retry-After queue full
//	                           or over budget, 503 closing)
//	POST   /v1/recommend       zero-execution recommendation from the history
//	                           store (synchronous; optional "refine" mode)
//	GET    /v1/jobs            list jobs (limit/offset pagination, state= filter)
//	GET    /v1/jobs/{id}       job status
//	GET    /v1/jobs/{id}/result  finished job's result
//	GET    /v1/jobs/{id}/conf    tuned spark-defaults.conf (text/plain)
//	DELETE /v1/jobs/{id}       cancel
//	GET    /v1/jobs/{id}/trace   the job's phase-span timeline
//	GET    /v1/history         history-store summaries (limit/offset pagination)
//	GET    /v1/history/{key}   entries under one workload fingerprint
//	GET    /healthz            liveness and job census by state
//	GET    /readyz             readiness (503 while resuming or draining)
//	GET    /metrics            Prometheus text exposition
//	GET    /debug/pprof/...    Go profiling endpoints (only with -pprof)
//
// Example session:
//
//	curl -s -XPOST -H 'Content-Type: application/json' localhost:8080/v1/jobs \
//	     -d '{"benchmark":"TPC-H","data_size_gb":100}'
//	curl -s localhost:8080/v1/jobs/job-000001
//	curl -s localhost:8080/v1/jobs/job-000001/conf
//	curl -s -XPOST -H 'Content-Type: application/json' localhost:8080/v1/recommend \
//	     -d '{"benchmark":"TPC-H","data_size_gb":120}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"locat"
)

// cliConfig is the parsed command line.
type cliConfig struct {
	addr    string
	pprofOn bool
	opts    locat.ServiceOptions
}

// parseFlags builds the service configuration from the command line; split
// from main so tests can drive it without exec'ing the binary.
func parseFlags(args []string, stderr io.Writer) (cliConfig, error) {
	fs := flag.NewFlagSet("locat-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var c cliConfig
	fs.StringVar(&c.addr, "addr", ":8080", "listen address")
	fs.StringVar(&c.opts.HistoryDir, "store", "", "history-store directory (empty: in-memory, lost on exit)")
	fs.IntVar(&c.opts.Workers, "workers", 2, "maximum concurrent tuning sessions")
	fs.BoolVar(&c.opts.Quiet, "quiet", false, "suppress the progress log")
	fs.StringVar(&c.opts.Backend, "backend", "", "default execution backend: sim, record=PATH, replay=PATH, sparkrest=URL (jobs may override)")
	fs.BoolVar(&c.pprofOn, "pprof", false, "expose Go profiling under /debug/pprof/ (off by default: profiling endpoints on a shared service are a footgun)")
	fs.BoolVar(&c.opts.Resume, "resume", false, "requeue checkpointed jobs interrupted by a previous process death (needs -store)")
	fs.IntVar(&c.opts.QueueCap, "max-queue", 0, "maximum queued jobs before submissions are refused with 429 (0: default 256)")
	fs.IntVar(&c.opts.JobRetries, "job-retries", 0, "automatic retries of failed jobs, each resuming from the job's checkpoint")
	fs.StringVar(&c.opts.Chaos, "chaos", "", "deterministic fault-injection spec for resilience testing, e.g. drop=0.3,maxfail=2,seed=7")
	fs.IntVar(&c.opts.RecommendK, "recommend-k", 0, "neighbors retrieved per /v1/recommend request (0: default 5)")
	fs.Float64Var(&c.opts.RecommendMaxDistance, "recommend-max-dist", 0, "feature-space radius past which a history entry is not a neighbor (0: default 0.75)")
	fs.Float64Var(&c.opts.RecommendConfidence, "recommend-confidence", 0, "confidence below which /v1/recommend falls back to a tuning job (0: default 0.5)")
	fs.IntVar(&c.opts.MaxHistoryKeys, "max-history-keys", 0, "distinct workload fingerprints kept in the history store (0: default 1024, negative: unbounded)")
	fs.Func("tenant", "per-tenant budget, repeatable: 'name:max_inflight=N,rate=R,burst=B,max_cluster_sec=S' ('*' applies to unlisted tenants)", func(v string) error {
		name, budget, err := parseTenant(v)
		if err != nil {
			return err
		}
		if c.opts.Tenants == nil {
			c.opts.Tenants = map[string]locat.TenantBudget{}
		}
		if _, dup := c.opts.Tenants[name]; dup {
			return fmt.Errorf("duplicate -tenant %q", name)
		}
		c.opts.Tenants[name] = budget
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return cliConfig{}, err
	}
	if c.opts.QueueCap < 0 {
		return cliConfig{}, errors.New("locat-serve: -max-queue must be >= 0")
	}
	if c.opts.JobRetries < 0 {
		return cliConfig{}, errors.New("locat-serve: -job-retries must be >= 0")
	}
	if c.opts.Resume && c.opts.HistoryDir == "" {
		return cliConfig{}, errors.New("locat-serve: -resume needs -store (an in-memory store has no checkpoints to resume)")
	}
	return c, nil
}

// parseTenant parses one -tenant value:
// "name:max_inflight=N,rate=R,burst=B,max_cluster_sec=S" with every budget
// key optional. The bare form "name" admits the tenant unbudgeted (useful
// to exempt one tenant from a "*" default).
func parseTenant(v string) (string, locat.TenantBudget, error) {
	name, spec, hasSpec := strings.Cut(v, ":")
	name = strings.TrimSpace(name)
	var b locat.TenantBudget
	if name == "" {
		return "", b, fmt.Errorf("-tenant %q: empty tenant name", v)
	}
	if !hasSpec || strings.TrimSpace(spec) == "" {
		return name, b, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return "", b, fmt.Errorf("-tenant %q: %q is not key=value", v, kv)
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil || f < 0 {
			return "", b, fmt.Errorf("-tenant %q: %s wants a non-negative number, got %q", v, key, val)
		}
		switch strings.TrimSpace(key) {
		case "max_inflight":
			b.MaxInFlight = int(f)
		case "rate":
			b.SubmitRate = f
		case "burst":
			b.SubmitBurst = int(f)
		case "max_cluster_sec":
			b.MaxClusterSec = f
		default:
			return "", b, fmt.Errorf("-tenant %q: unknown budget key %q (want max_inflight, rate, burst or max_cluster_sec)", v, key)
		}
	}
	return name, b, nil
}

func main() {
	c, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	svc, err := locat.NewService(c.opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "locat-serve:", err)
		os.Exit(1)
	}

	handler := svc.Handler()
	if c.pprofOn {
		// Mount the profiling handlers explicitly instead of importing the
		// package for its DefaultServeMux side effect: the API mux stays in
		// front, and without -pprof nothing is reachable.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}

	srv := &http.Server{Addr: c.addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "locat-serve: listening on %s (workers=%d, store=%s)\n",
		c.addr, c.opts.Workers, storeDesc(c.opts.HistoryDir))

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "locat-serve:", err)
			os.Exit(1)
		}
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "locat-serve: %s, draining\n", sig)
		// Drain the service before the listener: Close flips /readyz to 503
		// (so load balancers stop routing here while the port still answers)
		// and checkpoints queued and running jobs for a -resume restart.
		// Only then stop accepting connections, letting in-flight requests
		// finish.
		svc.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		_ = srv.Shutdown(ctx)
		cancel()
	}
}

func storeDesc(dir string) string {
	if dir == "" {
		return "in-memory"
	}
	return dir
}
