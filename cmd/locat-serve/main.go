// Command locat-serve runs the LOCAT tuning service: a long-running HTTP
// server with a pool of concurrent tuning sessions and a persistent
// history store that warm-starts sessions for workloads similar to past
// ones.
//
// Usage:
//
//	locat-serve -addr :8080 -store ./locat-history -workers 4
//
// API (JSON unless noted):
//
//	POST   /v1/jobs            submit {"cluster","benchmark","data_size_gb",...}
//	GET    /v1/jobs            list jobs
//	GET    /v1/jobs/{id}       job status
//	GET    /v1/jobs/{id}/result  finished job's result
//	GET    /v1/jobs/{id}/conf    tuned spark-defaults.conf (text/plain)
//	DELETE /v1/jobs/{id}       cancel
//	GET    /v1/jobs/{id}/trace   the job's phase-span timeline
//	GET    /v1/history         history-store summaries
//	GET    /v1/history/{key}   entries under one workload fingerprint
//	GET    /healthz            liveness and job census by state
//	GET    /metrics            Prometheus text exposition
//	GET    /debug/pprof/...    Go profiling endpoints (only with -pprof)
//
// Example session:
//
//	curl -s -XPOST localhost:8080/v1/jobs -d '{"benchmark":"TPC-H","data_size_gb":100}'
//	curl -s localhost:8080/v1/jobs/job-000001
//	curl -s localhost:8080/v1/jobs/job-000001/conf
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"locat"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		store   = flag.String("store", "", "history-store directory (empty: in-memory, lost on exit)")
		workers = flag.Int("workers", 2, "maximum concurrent tuning sessions")
		quiet   = flag.Bool("quiet", false, "suppress the progress log")
		backend = flag.String("backend", "", "default execution backend: sim, record=PATH, replay=PATH, sparkrest=URL (jobs may override)")
		pprofOn = flag.Bool("pprof", false, "expose Go profiling under /debug/pprof/ (off by default: profiling endpoints on a shared service are a footgun)")
	)
	flag.Parse()

	svc, err := locat.NewService(locat.ServiceOptions{
		Workers:    *workers,
		HistoryDir: *store,
		Quiet:      *quiet,
		Backend:    *backend,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "locat-serve:", err)
		os.Exit(1)
	}

	handler := svc.Handler()
	if *pprofOn {
		// Mount the profiling handlers explicitly instead of importing the
		// package for its DefaultServeMux side effect: the API mux stays in
		// front, and without -pprof nothing is reachable.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}

	srv := &http.Server{Addr: *addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "locat-serve: listening on %s (workers=%d, store=%s)\n",
		*addr, *workers, storeDesc(*store))

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "locat-serve:", err)
			os.Exit(1)
		}
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "locat-serve: %s, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		_ = srv.Shutdown(ctx)
		cancel()
		svc.Close()
	}
}

func storeDesc(dir string) string {
	if dir == "" {
		return "in-memory"
	}
	return dir
}
