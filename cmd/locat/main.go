// Command locat tunes a Spark SQL benchmark on a simulated cluster with the
// LOCAT pipeline and prints the chosen configuration.
//
// Usage:
//
//	locat -bench TPC-H -cluster x86 -size 200
//	locat -bench TPC-DS -size 300 -compare     # also run the four baselines
//	locat -quick -backend record=sess.trace    # record every execution
//	locat -quick -backend replay=sess.trace    # replay it, simulator detached
//	locat -recommend-from ./history -size 120  # zero-execution recommendation
//	                                           # from a locat-serve history dir
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"locat"
)

func main() {
	var (
		bench   = flag.String("bench", "TPC-DS", "benchmark: TPC-DS, TPC-H, Join, Scan, Aggregation")
		cluster = flag.String("cluster", "arm", "cluster: arm or x86")
		size    = flag.Float64("size", 100, "input data size in GB")
		seed    = flag.Int64("seed", 1, "random seed")
		compare = flag.Bool("compare", false, "also tune with the four SOTA baselines")
		quick   = flag.Bool("quick", false, "reduced budgets for a fast demo")
		quiet   = flag.Bool("quiet", false, "suppress the progress log on stderr")
		par     = flag.Int("parallel", 0, "concurrent execution slots for sample collection (0 = all cores, 1 = serial; identical results on the simulator)")
		backend = flag.String("backend", "", "execution backend: sim (default), record=PATH, replay=PATH[,miss=nearest[,tol=T]], sparkrest=URL")
		out     = flag.String("o", "", "write the tuned configuration to this spark-defaults.conf file")
		recFrom = flag.String("recommend-from", "", "serve a zero-execution recommendation from this locat-serve history directory instead of tuning")
	)
	flag.Parse()

	o := locat.Options{
		Cluster:     *cluster,
		Benchmark:   *bench,
		DataSizeGB:  *size,
		Seed:        *seed,
		Quiet:       *quiet,
		Parallelism: *par,
		Backend:     *backend,
	}
	if *quick {
		o.NQCSA, o.NIICP, o.MaxIterations = 12, 10, 10
	}

	if *recFrom != "" {
		rec, err := locat.RecommendFromHistory(*recFrom, o, locat.RecommendOptions{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "locat:", err)
			os.Exit(1)
		}
		fmt.Printf("LOCAT recommendation for %s at %.0f GB on the %s cluster: %s (confidence %.2f)\n",
			*bench, *size, *cluster, rec.Outcome, rec.Confidence)
		if len(rec.Neighbors) == 0 {
			fmt.Println("  no similar past sessions in the history store; run a tuning job first")
			os.Exit(1)
		}
		fmt.Printf("  estimated latency : %8.0f s (distance-weighted over %d neighbors, zero runs)\n",
			rec.EstimatedSeconds, len(rec.Neighbors))
		for _, n := range rec.Neighbors {
			fmt.Printf("    %-28s dist %.3f weight %.2f tuned %.0f s @ %.0f GB (%d obs)\n",
				n.JobID, n.Distance, n.Weight, n.TunedSeconds, n.TargetGB, n.Observations)
		}
		if *out != "" {
			if err := os.WriteFile(*out, []byte(rec.SparkConf), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "locat:", err)
				os.Exit(1)
			}
			fmt.Printf("  wrote recommended spark-defaults.conf to %s\n", *out)
		}
		names := make([]string, 0, len(rec.BestParams))
		for n := range rec.BestParams {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println("  recommended configuration:")
		for _, n := range names {
			fmt.Printf("    %-58s %g\n", n, rec.BestParams[n])
		}
		return
	}

	res, err := locat.Tune(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "locat:", err)
		os.Exit(1)
	}

	fmt.Printf("LOCAT tuned %s at %.0f GB on the %s cluster\n", *bench, *size, *cluster)
	fmt.Printf("  default latency : %8.0f s\n", res.DefaultSeconds)
	fmt.Printf("  tuned latency   : %8.0f s  (%.2fx faster)\n",
		res.TunedSeconds, res.DefaultSeconds/res.TunedSeconds)
	fmt.Printf("  tuning overhead : %8.1f h over %d runs (wall: %s)\n",
		res.OverheadSeconds/3600, res.Runs, res.Elapsed.Round(1e6))
	fmt.Printf("    sampling      : %8.1f h   search: %.1f h\n",
		res.SamplingSeconds/3600, res.SearchSeconds/3600)
	if res.SensitiveQueries != nil {
		fmt.Printf("  QCSA kept %d configuration-sensitive queries\n", len(res.SensitiveQueries))
	}
	if res.ImportantParams != nil {
		fmt.Printf("  IICP important parameters (%d):\n", len(res.ImportantParams))
		for _, p := range res.ImportantParams {
			fmt.Printf("    %-55s = %g\n", p, res.BestParams[p])
		}
	}
	if *out != "" {
		if err := os.WriteFile(*out, []byte(res.SparkConf()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "locat:", err)
			os.Exit(1)
		}
		fmt.Printf("  wrote tuned spark-defaults.conf to %s\n", *out)
	}
	fmt.Println("  full tuned configuration:")
	names := make([]string, 0, len(res.BestParams))
	for n := range res.BestParams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("    %-58s %g\n", n, res.BestParams[n])
	}

	if *compare {
		fmt.Println("\nBaseline comparison (same problem):")
		rs, err := locat.CompareBaselines(o)
		if err != nil {
			fmt.Fprintln(os.Stderr, "locat:", err)
			os.Exit(1)
		}
		fmt.Printf("  %-8s %12s %14s %6s\n", "tuner", "tuned (s)", "overhead (h)", "runs")
		fmt.Printf("  %-8s %12.0f %14.1f %6d\n", "LOCAT", res.TunedSeconds, res.OverheadSeconds/3600, res.Runs)
		for _, r := range rs {
			fmt.Printf("  %-8s %12.0f %14.1f %6d\n", r.Tuner, r.TunedSeconds, r.OverheadSeconds/3600, r.Runs)
		}
	}
}
