package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// An unknown -fig ID must list the valid IDs and exit non-zero instead of
// running nothing.
func TestUnknownFigListsValidIDs(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-fig", "fig99"}, &out, &errb)
	if code == 0 {
		t.Fatal("unknown -fig exited 0")
	}
	msg := errb.String()
	if !strings.Contains(msg, `unknown experiment "fig99"`) {
		t.Fatalf("missing diagnostic: %q", msg)
	}
	for _, id := range []string{"fig11", "table3", "fig21"} {
		if !strings.Contains(msg, id) {
			t.Fatalf("valid ID %s not listed in: %q", id, msg)
		}
	}
}

// -list must print every registered experiment.
func TestListIDs(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "fig11") || !strings.Contains(out.String(), "table3") {
		t.Fatalf("IDs missing from -list output: %q", out.String())
	}
}

// No selection must print usage and exit 2.
func TestNoSelectionUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "usage:") {
		t.Fatalf("no usage message: %q", errb.String())
	}
}

// A bad -backend spec must fail with a diagnostic.
func TestBadBackendSpec(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-fig", "fig8", "-backend", "bogus"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2 (%s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "unknown backend spec") {
		t.Fatalf("missing diagnostic: %q", errb.String())
	}
}

// runQuickFig runs one cheap experiment with -json and returns the report.
func runQuickFig(t *testing.T, dir, name string, extra ...string) (report, string) {
	t.Helper()
	path := filepath.Join(dir, name)
	args := append([]string{"-fig", "fig8", "-quick", "-json", path}, extra...)
	var out, errb bytes.Buffer
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	var rep report
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	return rep, path
}

// -json must emit per-experiment wall time, cluster seconds and final cost,
// and the deterministic metrics must be stable across identical runs.
func TestJSONReportDeterministicMetrics(t *testing.T) {
	dir := t.TempDir()
	a, _ := runQuickFig(t, dir, "a.json")
	b, _ := runQuickFig(t, dir, "b.json")
	if len(a.Experiments) != 1 || a.Experiments[0].ID != "fig8" {
		t.Fatalf("bad report: %+v", a)
	}
	ea, eb := a.Experiments[0], b.Experiments[0]
	if ea.ClusterSec <= 0 || ea.Runs <= 0 {
		t.Fatalf("empty accounting: %+v", ea)
	}
	if ea.ClusterSec != eb.ClusterSec || ea.FinalCost != eb.FinalCost || ea.Runs != eb.Runs {
		t.Fatalf("deterministic metrics differ across identical runs: %+v vs %+v", ea, eb)
	}
	if ea.WallSec <= 0 {
		t.Fatalf("wall time not recorded: %+v", ea)
	}
}

// The gate must pass against an identical baseline and fail (exit 3) when
// the baseline's deterministic metrics are tightened below the measured
// values.
func TestRegressionGate(t *testing.T) {
	dir := t.TempDir()
	rep, path := runQuickFig(t, dir, "base.json")

	// Identical baseline: gate passes.
	var out, errb bytes.Buffer
	code := run([]string{"-fig", "fig8", "-quick", "-baseline", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("gate failed against identical baseline: exit %d, %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "no perf regressions") {
		t.Fatalf("no gate confirmation: %q", out.String())
	}

	// Shrink the baseline's cluster seconds by 2×: the measured run now
	// regresses past the 20% gate.
	tight := rep
	tight.Experiments = append([]experiment(nil), rep.Experiments...)
	tight.Experiments[0].ClusterSec /= 2
	tightPath := filepath.Join(dir, "tight.json")
	if err := writeReport(tightPath, &tight); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errb.Reset()
	code = run([]string{"-fig", "fig8", "-quick", "-baseline", tightPath}, &out, &errb)
	if code != 3 {
		t.Fatalf("gate exit %d, want 3 (%s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "cluster_sec") {
		t.Fatalf("regression not named: %q", errb.String())
	}

	// Mismatched generation flags must be an error, not a silent pass.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-fig", "fig8", "-baseline", path}, &out, &errb); code != 1 {
		t.Fatalf("flag-mismatch exit %d, want 1 (%s)", code, errb.String())
	}
}

// compareReports must flag baseline experiments missing from a full-suite
// run but ignore them for single-experiment runs.
func TestCompareMissingExperiments(t *testing.T) {
	dir := t.TempDir()
	base := report{Schema: 1, Seed: 1, Quick: true, Experiments: []experiment{
		{ID: "fig8", ClusterSec: 10, FinalCost: 5},
		{ID: "fig9", ClusterSec: 10, FinalCost: 5},
	}}
	path := filepath.Join(dir, "b.json")
	if err := writeReport(path, &base); err != nil {
		t.Fatal(err)
	}
	cur := report{Schema: 1, Seed: 1, Quick: true, Experiments: []experiment{
		{ID: "fig8", ClusterSec: 10, FinalCost: 5},
	}}
	regs, err := compareReports(path, &cur, 0.2, false, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !strings.Contains(regs[0], "fig9") {
		t.Fatalf("missing experiment not flagged: %v", regs)
	}
	regs, err = compareReports(path, &cur, 0.2, false, false)
	if err != nil || len(regs) != 0 {
		t.Fatalf("single-fig run flagged missing experiments: %v, %v", regs, err)
	}
}

// -cpuprofile / -memprofile must write non-empty pprof files covering the
// experiment runs, so perf PRs can attach before/after profiles.
func TestProfileFlagsWriteFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	var out, errb bytes.Buffer
	if code := run([]string{"-fig", "fig20", "-quick", "-cpuprofile", cpu, "-memprofile", mem}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
	// An unwritable profile path must fail up front, not after the runs.
	if code := run([]string{"-fig", "fig20", "-quick", "-cpuprofile", filepath.Join(dir, "no", "such", "dir.out")}, &out, &errb); code != 2 {
		t.Fatalf("unwritable -cpuprofile exited %d, want 2", code)
	}
}
