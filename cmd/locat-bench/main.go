// Command locat-bench regenerates the paper's evaluation figures and tables
// on the simulated clusters.
//
// Usage:
//
//	locat-bench -fig fig11            # one experiment
//	locat-bench -all                  # every experiment (several minutes)
//	locat-bench -all -quick           # reduced budgets (seconds–minutes)
//	locat-bench -list                 # list experiment IDs
//
// Each experiment prints the same rows/series the corresponding paper figure
// reports; EXPERIMENTS.md records the paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"locat/internal/experiments"
)

func main() {
	var (
		fig   = flag.String("fig", "", "experiment ID to run (fig2..fig21, table3)")
		all   = flag.Bool("all", false, "run every experiment")
		quick = flag.Bool("quick", false, "reduced budgets for a fast pass")
		list  = flag.Bool("list", false, "list experiment IDs")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	var ids []string
	switch {
	case *all:
		ids = experiments.IDs()
	case *fig != "":
		ids = []string{*fig}
	default:
		fmt.Fprintln(os.Stderr, "usage: locat-bench -fig <id> | -all [-quick] (use -list for IDs)")
		os.Exit(2)
	}

	s := experiments.NewSession(*seed, *quick)
	for _, id := range ids {
		run, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "locat-bench: unknown experiment %q\n", id)
			os.Exit(2)
		}
		start := time.Now()
		tables, err := run(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "locat-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		for i := range tables {
			tables[i].Render(os.Stdout)
		}
		fmt.Printf("(%s finished in %s)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
