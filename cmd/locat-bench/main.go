// Command locat-bench regenerates the paper's evaluation figures and tables
// on the configured execution backend (the simulated clusters by default).
//
// Usage:
//
//	locat-bench -fig fig11            # one experiment
//	locat-bench -all                  # every experiment (several minutes)
//	locat-bench -all -quick           # reduced budgets (seconds–minutes)
//	locat-bench -list                 # list experiment IDs
//
// Machine-readable perf reporting and the CI regression gate:
//
//	locat-bench -all -quick -json BENCH_PR.json
//	locat-bench -all -quick -json BENCH_PR.json -baseline BENCH_BASELINE.json
//
// -json writes per-experiment wall time, simulated cluster seconds and
// final tuned cost, plus a per-phase breakdown ("phases") of the LOCAT
// pipeline: wall time, cluster seconds and run counts for sampling, QCSA,
// IICP, the subspace search and the GP hyperparameter resamples.
// -baseline compares the report against a previous one
// and exits with status 3 when any deterministic metric regresses by more
// than -max-regress (default 20%). Wall time is reported but only gated
// with -gate-wall, since it depends on the machine.
//
// Execution backends (-backend) select what actually runs the samples:
// "sim" (default), "record=PATH" to capture a trace, "replay=PATH" to
// regenerate figures hermetically from a recorded trace, "sparkrest=URL"
// to drive a live gateway.
//
// Profiling (-cpuprofile / -memprofile) writes pprof output covering the
// experiment runs, so a perf change can ship with before/after profiles:
//
//	locat-bench -fig fig11 -quick -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof -top cpu.out
//
// Each experiment prints the same rows/series the corresponding paper
// figure reports; EXPERIMENTS.md documents the harness, the perf-report
// schema and the CI gates.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"locat/internal/experiments"
)

// report is the machine-readable outcome of a bench run (BENCH_PR.json).
type report struct {
	Schema      int          `json:"schema"`
	Seed        int64        `json:"seed"`
	Quick       bool         `json:"quick"`
	Backend     string       `json:"backend,omitempty"`
	Experiments []experiment `json:"experiments"`
}

// experiment is one figure/table's accounting.
type experiment struct {
	ID string `json:"id"`
	// WallSec is the host wall-clock time (machine-dependent; gated only
	// with -gate-wall).
	WallSec float64 `json:"wall_sec"`
	// ClusterSec is the simulated cluster time the experiment's tuning runs
	// consumed — deterministic for a given seed, so a >20% change is a real
	// behavioral regression, not noise.
	ClusterSec float64 `json:"cluster_sec"`
	// FinalCost is the sum of tuned final latencies the experiment
	// requested — deterministic; a rise means tuning quality regressed.
	FinalCost float64 `json:"final_cost"`
	// Runs is the number of executions performed.
	Runs int64 `json:"runs"`
	// Phases breaks the experiment's LOCAT tuning runs down by pipeline
	// phase (aggregated by name; empty for experiments that never enter the
	// LOCAT pipeline). Wall time is machine-dependent and never gated;
	// cluster seconds and run counts are deterministic.
	Phases []phase `json:"phases,omitempty"`
	// Counters are exact deterministic outcomes the experiment published
	// (the loadtest experiment's per-tenant/priority admission census).
	// Unlike the tolerance-gated metrics above, the baseline gate compares
	// them bit for bit.
	Counters map[string]float64 `json:"counters,omitempty"`
}

// phase is one pipeline phase's share of an experiment.
type phase struct {
	Name       string  `json:"name"`
	WallSec    float64 `json:"wall_sec"`
	ClusterSec float64 `json:"cluster_sec"`
	Runs       int64   `json:"runs"`
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is main without the process exit, so CLI tests can drive it.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("locat-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig        = fs.String("fig", "", "experiment ID to run (fig2..fig21, table3)")
		all        = fs.Bool("all", false, "run every experiment")
		quick      = fs.Bool("quick", false, "reduced budgets for a fast pass")
		list       = fs.Bool("list", false, "list experiment IDs")
		seed       = fs.Int64("seed", 1, "random seed")
		backend    = fs.String("backend", "", "execution backend: sim (default), record=PATH, replay=PATH, sparkrest=URL")
		jsonOut    = fs.String("json", "", "write the machine-readable perf report to this file")
		baseline   = fs.String("baseline", "", "compare the report against this baseline file; exit 3 on regression")
		maxRegress = fs.Float64("max-regress", 0.20, "maximum allowed fractional regression vs the baseline")
		gateWall   = fs.Bool("gate-wall", false, "also gate wall time (off by default: machine-dependent)")
		cpuProfile = fs.String("cpuprofile", "", "write a pprof CPU profile of the experiment runs to this file")
		memProfile = fs.String("memprofile", "", "write a pprof heap profile (after the runs) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// Profiling brackets the experiment runs only — flag parsing and report
	// plumbing would just be noise in the profile.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(stderr, "locat-bench:", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "locat-bench:", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(stderr, "locat-bench:", err)
			return 2
		}
		defer func() {
			// Up-to-date allocation stats before the snapshot.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "locat-bench: writing heap profile:", err)
			}
			f.Close()
		}()
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Fprintln(stdout, id)
		}
		return 0
	}

	var ids []string
	switch {
	case *all:
		ids = experiments.IDs()
	case *fig != "":
		ids = []string{*fig}
	default:
		fmt.Fprintln(stderr, "usage: locat-bench -fig <id> | -all [-quick] (use -list for IDs)")
		return 2
	}

	// Validate every requested ID up front: an unknown experiment must name
	// the valid ones and fail, not run an empty suite.
	for _, id := range ids {
		if _, ok := experiments.Registry[id]; !ok {
			fmt.Fprintf(stderr, "locat-bench: unknown experiment %q; valid IDs:\n  %s\n",
				id, strings.Join(experiments.IDs(), "\n  "))
			return 2
		}
	}

	s, err := experiments.NewSessionBackend(*seed, *quick, *backend)
	if err != nil {
		fmt.Fprintln(stderr, "locat-bench:", err)
		return 2
	}

	rep := report{Schema: 1, Seed: *seed, Quick: *quick, Backend: *backend}
	for _, id := range ids {
		start := time.Now()
		tables, err := experiments.Registry[id](s)
		if err != nil {
			fmt.Fprintf(stderr, "locat-bench: %s: %v\n", id, err)
			return 1
		}
		for i := range tables {
			tables[i].Render(stdout)
		}
		wall := time.Since(start)
		runs, clusterSec, finalCost := s.TakeUsage()
		var phases []phase
		for _, sp := range s.TakePhases() {
			phases = append(phases, phase{
				Name:       sp.Name,
				WallSec:    sp.WallMS / 1000,
				ClusterSec: sp.ClusterSec,
				Runs:       sp.Runs,
			})
		}
		rep.Experiments = append(rep.Experiments, experiment{
			ID:         id,
			WallSec:    wall.Seconds(),
			ClusterSec: clusterSec,
			FinalCost:  finalCost,
			Runs:       runs,
			Phases:     phases,
			Counters:   s.TakeCounters(),
		})
		fmt.Fprintf(stdout, "(%s finished in %s; %d runs, %.0f simulated cluster seconds)\n\n",
			id, wall.Round(time.Millisecond), runs, clusterSec)
	}
	if err := s.Close(); err != nil {
		fmt.Fprintln(stderr, "locat-bench: closing backend:", err)
		return 1
	}

	if *jsonOut != "" {
		if err := writeReport(*jsonOut, &rep); err != nil {
			fmt.Fprintln(stderr, "locat-bench:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote perf report to %s\n", *jsonOut)
	}

	if *baseline != "" {
		regressions, err := compareReports(*baseline, &rep, *maxRegress, *gateWall, *all)
		if err != nil {
			fmt.Fprintln(stderr, "locat-bench:", err)
			return 1
		}
		if len(regressions) > 0 {
			fmt.Fprintf(stderr, "locat-bench: %d perf regression(s) vs %s (max allowed %.0f%%):\n",
				len(regressions), *baseline, *maxRegress*100)
			for _, r := range regressions {
				fmt.Fprintln(stderr, "  "+r)
			}
			return 3
		}
		fmt.Fprintf(stdout, "no perf regressions vs %s (gate: %.0f%%)\n", *baseline, *maxRegress*100)
	}
	return 0
}

// writeReport writes the JSON report with stable formatting.
func writeReport(path string, rep *report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// compareReports diffs the current report against a baseline file and
// returns one line per metric regressing by more than maxRegress.
// Deterministic metrics (cluster seconds, final cost) are always gated;
// wall time only when gateWall is set. When the current run covers the
// full suite (checkMissing), baseline experiments absent from it are
// reported too: a silently dropped experiment must not pass the gate.
func compareReports(baselinePath string, cur *report, maxRegress float64, gateWall, checkMissing bool) ([]string, error) {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return nil, err
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("bad baseline %s: %w", baselinePath, err)
	}
	if base.Seed != cur.Seed || base.Quick != cur.Quick {
		return nil, fmt.Errorf("baseline %s was generated with -seed %d -quick=%v; rerun with matching flags",
			baselinePath, base.Seed, base.Quick)
	}
	baseByID := map[string]experiment{}
	for _, e := range base.Experiments {
		baseByID[e.ID] = e
	}
	curIDs := map[string]bool{}
	var out []string
	exceeds := func(baseV, curV float64) bool {
		if baseV <= 0 {
			return curV > 1e-9 // a metric appearing from zero is suspicious
		}
		return curV > baseV*(1+maxRegress)+1e-9
	}
	for _, e := range cur.Experiments {
		curIDs[e.ID] = true
		b, ok := baseByID[e.ID]
		if !ok {
			continue // new experiment: no baseline yet, nothing to gate
		}
		if exceeds(b.ClusterSec, e.ClusterSec) {
			out = append(out, fmt.Sprintf("%s: cluster_sec %.1f → %.1f (+%.1f%%)",
				e.ID, b.ClusterSec, e.ClusterSec, pct(b.ClusterSec, e.ClusterSec)))
		}
		if exceeds(b.FinalCost, e.FinalCost) {
			out = append(out, fmt.Sprintf("%s: final_cost %.1f → %.1f (+%.1f%%)",
				e.ID, b.FinalCost, e.FinalCost, pct(b.FinalCost, e.FinalCost)))
		}
		if gateWall && exceeds(b.WallSec, e.WallSec) {
			out = append(out, fmt.Sprintf("%s: wall_sec %.2f → %.2f (+%.1f%%)",
				e.ID, b.WallSec, e.WallSec, pct(b.WallSec, e.WallSec)))
		}
		// Counters are exact admission/outcome counts: any drift, in either
		// direction, is a behavioral change the baseline must acknowledge.
		names := make([]string, 0, len(b.Counters))
		for name := range b.Counters {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if cv, ok := e.Counters[name]; !ok {
				out = append(out, fmt.Sprintf("%s: counter %s missing (baseline %v)", e.ID, name, b.Counters[name]))
			} else if cv != b.Counters[name] {
				out = append(out, fmt.Sprintf("%s: counter %s %v → %v (exact gate)", e.ID, name, b.Counters[name], cv))
			}
		}
	}
	var missing []string
	if checkMissing {
		for _, e := range base.Experiments {
			if !curIDs[e.ID] {
				missing = append(missing, e.ID)
			}
		}
	}
	sort.Strings(missing)
	for _, id := range missing {
		out = append(out, fmt.Sprintf("%s: present in baseline but not in this run", id))
	}
	return out, nil
}

// pct renders the fractional increase as a percentage.
func pct(base, cur float64) float64 {
	if base <= 0 {
		return 100
	}
	return (cur/base - 1) * 100
}
