// Command locat-load drives a deterministic mixed-tenant workload against a
// running locat-serve instance and reports per-route latency quantiles plus
// per-tenant/priority outcome counts.
//
// Usage:
//
//	locat-load -addr http://127.0.0.1:8080                  # default mix
//	locat-load -addr ... -batch 12 -interactive 4 -recommends 8
//	locat-load -addr ... -sequential -json report.json
//	locat-load -addr ... -require-no-interactive-shed       # CI overload gate
//
// The workload order is fixed — batch tuning jobs, then interactive tuning
// jobs, then recommendations — so the batch wave saturates the queue before
// the high-priority wave arrives; with -sequential the service's admission
// decisions (accept / reject / shed) become a pure function of that order.
// -require-no-interactive-shed exits with status 3 when any interactive job
// was shed or any recommend group saw an overload rejection while batch
// traffic survived untouched — the inverted-priority signal the overload
// design forbids.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"locat/internal/loadgen"
	"locat/internal/service"
)

type cliConfig struct {
	addr          string
	clients       int
	batch         int
	interactive   int
	recommends    int
	tenants       []string
	seed          int64
	benchmark     string
	maxClusterSec float64
	deadlineSec   float64
	sequential    bool
	requireNoShed bool
	jsonPath      string
	quick         bool
}

func parseFlags(args []string, stderr io.Writer) (cliConfig, error) {
	fs := flag.NewFlagSet("locat-load", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var c cliConfig
	var tenants string
	fs.StringVar(&c.addr, "addr", "http://127.0.0.1:8080", "base URL of the locat-serve instance")
	fs.IntVar(&c.clients, "clients", 8, "concurrent client goroutines")
	fs.IntVar(&c.batch, "batch", 12, "batch-priority tuning jobs")
	fs.IntVar(&c.interactive, "interactive", 4, "interactive-priority tuning jobs")
	fs.IntVar(&c.recommends, "recommends", 8, "zero-execution recommendation requests")
	fs.StringVar(&tenants, "tenants", "acme,globex", "comma-separated tenant names (empty: anonymous)")
	fs.Int64Var(&c.seed, "seed", 1, "workload seed (same seed, same op sequence)")
	fs.StringVar(&c.benchmark, "benchmark", "TPC-H", "workload benchmark of the generated jobs")
	fs.Float64Var(&c.maxClusterSec, "max-cluster-sec", 0,
		"per-job simulated cluster-second budget of batch jobs (0: unlimited; small values force deterministic degrades)")
	fs.Float64Var(&c.deadlineSec, "deadline-sec", 0, "per-job wall-clock deadline of batch jobs (0: none)")
	fs.BoolVar(&c.sequential, "sequential", false, "submit in workload order from one goroutine (deterministic admission)")
	fs.BoolVar(&c.requireNoShed, "require-no-interactive-shed", false,
		"exit 3 if interactive work was shed or rejected for overload while batch survived")
	fs.StringVar(&c.jsonPath, "json", "", "write the machine-readable report to this file (\"-\": stdout)")
	fs.BoolVar(&c.quick, "quick", true, "use reduced per-job tuning budgets (seconds per job instead of minutes)")
	if err := fs.Parse(args); err != nil {
		return c, err
	}
	if fs.NArg() > 0 {
		return c, fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}
	if c.clients < 1 {
		return c, fmt.Errorf("-clients must be at least 1")
	}
	if c.batch < 0 || c.interactive < 0 || c.recommends < 0 {
		return c, fmt.Errorf("operation counts must be non-negative")
	}
	if c.batch+c.interactive+c.recommends == 0 {
		return c, fmt.Errorf("empty workload: all operation counts are zero")
	}
	if c.maxClusterSec < 0 || c.deadlineSec < 0 {
		return c, fmt.Errorf("budgets must be non-negative")
	}
	if tenants != "" {
		for _, t := range strings.Split(tenants, ",") {
			if t = strings.TrimSpace(t); t != "" {
				c.tenants = append(c.tenants, t)
			}
		}
	}
	return c, nil
}

// mix expands the CLI configuration into the workload.
func mix(c cliConfig) []loadgen.Op {
	template := service.JobSpec{
		Benchmark:     c.benchmark,
		MaxClusterSec: c.maxClusterSec,
		DeadlineSec:   c.deadlineSec,
		// Load-test jobs opt out of history retrieval so every run costs the
		// same no matter what earlier jobs deposited.
		ColdStart: true,
	}
	if c.quick {
		template.NQCSA, template.NIICP, template.MaxIterations = 10, 8, 8
	}
	ops := loadgen.Mix(loadgen.MixOptions{
		Seed:             c.seed,
		BatchTunes:       c.batch,
		InteractiveTunes: c.interactive,
		Recommends:       c.recommends,
		Tenants:          c.tenants,
		Template:         template,
	})
	for i := range ops {
		if ops[i].Spec.Priority == service.PriorityInteractive {
			// Budgets exist to bound the cheap-by-construction batch wave;
			// interactive jobs run unbudgeted so their completions are the
			// overload test's control group.
			ops[i].Spec.MaxClusterSec = 0
			ops[i].Spec.DeadlineSec = 0
		}
	}
	return ops
}

func run(c cliConfig, stdout, stderr io.Writer) int {
	ops := mix(c)
	rep, err := loadgen.Run(&loadgen.HTTPTarget{Base: strings.TrimRight(c.addr, "/")}, ops, loadgen.Config{
		Clients:          c.clients,
		SequentialSubmit: c.sequential,
	})
	if err != nil {
		fmt.Fprintf(stderr, "locat-load: %v\n", err)
		return 1
	}

	printReport(stdout, rep)
	if c.jsonPath != "" {
		if err := writeJSON(c.jsonPath, rep, stdout); err != nil {
			fmt.Fprintf(stderr, "locat-load: %v\n", err)
			return 1
		}
	}
	if c.requireNoShed {
		if bad := invertedPriority(rep); bad != "" {
			fmt.Fprintf(stderr, "locat-load: priority inversion: %s\n", bad)
			return 3
		}
	}
	return 0
}

// invertedPriority scans the report for overload falling on interactive
// traffic: a shed interactive job, or an interactive rejection in a run
// where batch jobs were neither shed nor rejected. Returns the complaint,
// "" when clean.
func invertedPriority(rep *loadgen.Report) string {
	var batchPressure bool
	for g, c := range rep.Groups {
		if strings.HasSuffix(g, "/"+string(service.PriorityBatch)) && (c.Shed > 0 || c.Rejected > 0) {
			batchPressure = true
		}
	}
	for g, c := range rep.Groups {
		if !strings.HasSuffix(g, "/"+string(service.PriorityInteractive)) {
			continue
		}
		if c.Shed > 0 {
			return fmt.Sprintf("group %s: %d interactive jobs shed", g, c.Shed)
		}
		if c.Rejected > 0 && !batchPressure {
			return fmt.Sprintf("group %s: %d interactive rejections with no batch back-pressure", g, c.Rejected)
		}
	}
	return ""
}

func printReport(w io.Writer, rep *loadgen.Report) {
	fmt.Fprintf(w, "ops %d in %.2f s\n", rep.Ops, rep.WallSec)
	routes := make([]string, 0, len(rep.Routes))
	for r := range rep.Routes {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	for _, r := range routes {
		st := rep.Routes[r]
		fmt.Fprintf(w, "  %-10s n=%-5d p50=%8.4fs p99=%8.4fs max=%8.4fs\n",
			r, st.Count, st.P50, st.P99, st.Max)
	}
	groups := make([]string, 0, len(rep.Groups))
	for g := range rep.Groups {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	for _, g := range groups {
		c := rep.Groups[g]
		fmt.Fprintf(w, "  %-24s submitted=%d accepted=%d rejected=%d shed=%d completed=%d degraded=%d hits=%d runs=%d\n",
			g, c.Submitted, c.Accepted, c.Rejected, c.Shed, c.Completed, c.Degraded, c.Hits, c.Runs)
	}
	t := rep.Totals()
	fmt.Fprintf(w, "  total: submitted=%d accepted=%d rejected=%d shed=%d completed=%d degraded=%d\n",
		t.Submitted, t.Accepted, t.Rejected, t.Shed, t.Completed, t.Degraded)
}

func writeJSON(path string, rep *loadgen.Report, stdout io.Writer) error {
	var w io.Writer = stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func main() {
	c, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		os.Exit(2)
	}
	os.Exit(run(c, os.Stdout, os.Stderr))
}
