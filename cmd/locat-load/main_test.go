package main

import (
	"io"
	"reflect"
	"testing"

	"locat/internal/loadgen"
	"locat/internal/service"
)

func TestParseFlagsDefaults(t *testing.T) {
	c, err := parseFlags(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	want := cliConfig{
		addr: "http://127.0.0.1:8080", clients: 8,
		batch: 12, interactive: 4, recommends: 8,
		tenants: []string{"acme", "globex"},
		seed:    1, benchmark: "TPC-H", quick: true,
	}
	if !reflect.DeepEqual(c, want) {
		t.Fatalf("defaults = %+v, want %+v", c, want)
	}
}

func TestParseFlagsTenantsAndBudgets(t *testing.T) {
	c, err := parseFlags([]string{
		"-tenants", " a , b ,", "-max-cluster-sec", "1", "-deadline-sec", "0.5",
		"-sequential", "-require-no-interactive-shed", "-quick=false",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c.tenants, []string{"a", "b"}) {
		t.Fatalf("tenants = %v", c.tenants)
	}
	if c.maxClusterSec != 1 || c.deadlineSec != 0.5 || !c.sequential || !c.requireNoShed || c.quick {
		t.Fatalf("config = %+v", c)
	}
	// Empty tenant list means the anonymous tenant.
	c, err = parseFlags([]string{"-tenants", ""}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if c.tenants != nil {
		t.Fatalf("tenants = %v, want none", c.tenants)
	}
}

func TestParseFlagsRejectsBadValues(t *testing.T) {
	for _, args := range [][]string{
		{"-clients", "0"},
		{"-batch", "-1"},
		{"-batch", "0", "-interactive", "0", "-recommends", "0"},
		{"-max-cluster-sec", "-1"},
		{"-deadline-sec", "-1"},
		{"-no-such-flag"},
		{"stray-arg"},
	} {
		if _, err := parseFlags(args, io.Discard); err == nil {
			t.Errorf("parseFlags(%v) accepted", args)
		}
	}
}

// Budgets bound only the batch wave: interactive jobs are the overload
// test's control group and must run unbudgeted.
func TestMixKeepsInteractiveUnbudgeted(t *testing.T) {
	c, err := parseFlags([]string{"-max-cluster-sec", "1", "-deadline-sec", "2"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	ops := mix(c)
	if len(ops) != c.batch+c.interactive+c.recommends {
		t.Fatalf("len = %d", len(ops))
	}
	for _, op := range ops {
		interactive := op.Spec.Priority == service.PriorityInteractive
		if interactive && (op.Spec.MaxClusterSec != 0 || op.Spec.DeadlineSec != 0) {
			t.Fatalf("op %d: interactive job carries budgets %+v", op.Index, op.Spec)
		}
		if !interactive && (op.Spec.MaxClusterSec != 1 || op.Spec.DeadlineSec != 2) {
			t.Fatalf("op %d: batch job lost its budgets %+v", op.Index, op.Spec)
		}
		if !op.Spec.ColdStart {
			t.Fatalf("op %d consults history; load-test runs must be cold", op.Index)
		}
		if op.Spec.NQCSA != 10 || op.Spec.NIICP != 8 || op.Spec.MaxIterations != 8 {
			t.Fatalf("op %d: quick budgets not applied: %+v", op.Index, op.Spec)
		}
	}
}

func TestInvertedPriority(t *testing.T) {
	rep := func(groups map[string]*loadgen.Counts) *loadgen.Report {
		return &loadgen.Report{Groups: groups}
	}
	if bad := invertedPriority(rep(map[string]*loadgen.Counts{
		"a/batch":       {Shed: 2, Rejected: 1},
		"a/interactive": {Completed: 3},
	})); bad != "" {
		t.Fatalf("batch-only pressure flagged: %s", bad)
	}
	if bad := invertedPriority(rep(map[string]*loadgen.Counts{
		"a/interactive": {Shed: 1},
	})); bad == "" {
		t.Fatal("shed interactive job not flagged")
	}
	// Interactive rejections are an inversion only when batch sailed through.
	if bad := invertedPriority(rep(map[string]*loadgen.Counts{
		"a/batch":       {Rejected: 1},
		"a/interactive": {Rejected: 1},
	})); bad != "" {
		t.Fatalf("shared back-pressure flagged: %s", bad)
	}
	if bad := invertedPriority(rep(map[string]*loadgen.Counts{
		"a/batch":       {Completed: 5},
		"a/interactive": {Rejected: 1},
	})); bad == "" {
		t.Fatal("interactive-only rejections not flagged")
	}
}
