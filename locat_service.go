package locat

import (
	"fmt"
	"net/http"
	"os"
	"time"

	"locat/internal/progress"
	"locat/internal/runner"
	"locat/internal/service"
)

// ServiceOptions configure a tuning Service.
type ServiceOptions struct {
	// Workers is the maximum number of tuning sessions running
	// concurrently (default 2). Further submissions queue.
	Workers int
	// HistoryDir, when non-empty, persists the tuning history to one JSON
	// file per workload fingerprint in that directory, so warm starts
	// survive restarts. Empty keeps the history in memory.
	HistoryDir string
	// QueueCap bounds the submission backlog (default 256).
	QueueCap int
	// Quiet suppresses the service's progress log on stderr.
	Quiet bool
	// Backend is the default execution backend of tuning sessions (an
	// internal/runner spec: "sim", "record=PATH", "replay=PATH", or
	// "sparkrest=URL"; empty selects the simulator). Individual jobs may
	// override it via Options.Backend.
	Backend string
	// Resume requeues jobs whose checkpoints survived a process death: on
	// startup every checkpoint in the store becomes a queued job under its
	// original ID, and the resumed session serves already-paid runs from
	// the checkpoint instead of re-executing them. Meaningful together with
	// HistoryDir (an in-memory store dies with the process).
	Resume bool
	// JobRetries bounds automatic in-process retries of failed jobs
	// (default 0). Retried jobs resume from their checkpoint, so each
	// attempt only pays for runs no earlier attempt completed.
	JobRetries int
	// Chaos, when non-empty, wraps every session backend in deterministic
	// fault injection plus the healing retry/breaker layer (same spec
	// syntax as Options.Chaos). Meant for resilience testing.
	Chaos string
	// RecommendK, RecommendMaxDistance and RecommendConfidence are the
	// service defaults of the zero-execution recommendation tier: neighbors
	// retrieved per request, the distance past which a history entry no
	// longer counts as a neighbor, and the confidence below which a
	// recommendation falls back to a real tuning job. Zero picks 5 / 0.75 /
	// 0.5.
	RecommendK           int
	RecommendMaxDistance float64
	RecommendConfidence  float64
	// MaxHistoryKeys caps the history store's distinct workload fingerprints
	// (whole least-recently-written keys are evicted past the cap). Zero
	// picks 1024; negative is unbounded.
	MaxHistoryKeys int
	// Tenants maps tenant names to admission budgets; the "*" entry applies
	// to every unlisted tenant. Nil leaves all tenants unbudgeted.
	// Over-budget submissions fail immediately (429 + Retry-After over
	// HTTP) instead of queueing.
	Tenants map[string]TenantBudget
}

// TenantBudget bounds one tenant's admission. Zero fields are unlimited.
type TenantBudget struct {
	// MaxInFlight caps the tenant's queued-plus-running jobs.
	MaxInFlight int
	// SubmitRate and SubmitBurst are a token bucket on submissions:
	// sustained jobs per second and the bucket depth above it (depth
	// defaults to max(1, ceil(SubmitRate)) when a rate is set).
	SubmitRate  float64
	SubmitBurst int
	// MaxClusterSec caps the tenant's cumulative simulated cluster seconds
	// across all completed jobs; once exhausted, new submissions are
	// refused until the operator raises the budget.
	MaxClusterSec float64
}

// JobState is a job's lifecycle position: "queued", "running", "succeeded",
// "failed", "cancelled", "shed" (a queued batch job displaced by
// interactive work under overload) or "suspended" (parked by a graceful
// drain; a restart with Resume requeues it under the same ID).
type JobState string

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool { return service.State(s).Terminal() }

// JobStatus is a snapshot of a submitted job.
type JobStatus struct {
	// ID is the handle Submit returned.
	ID string
	// State is the lifecycle position.
	State JobState
	// Err holds the failure message of a failed job.
	Err string
	// Fingerprint is the workload-fingerprint key the job's history is
	// stored under.
	Fingerprint string
	// Submitted, Started and Finished are the lifecycle timestamps
	// (Started/Finished are zero while not yet reached).
	Submitted, Started, Finished time.Time
}

// Service is a long-running tuning service: a bounded pool of concurrent
// sessions plus a history store of finished ones, keyed by workload
// fingerprint. Sessions for workloads similar to past ones (same cluster,
// benchmark and technique set, input size within a neighboring power-of-two
// bucket) are warm-started: the datasize-aware GP is seeded with retrieved
// observations and the QCSA / IICP artifacts are reused, so the session
// skips most of the full-application sample collection — the dominant part
// of the paper's optimization time.
//
//	svc, _ := locat.NewService(locat.ServiceOptions{Workers: 4})
//	defer svc.Close()
//	id, _ := svc.Submit(locat.Options{Benchmark: "TPC-H", DataSizeGB: 100})
//	res, _ := svc.Result(id) // blocks; later similar jobs get cheaper
type Service struct {
	svc *service.Service
}

// NewService starts a tuning service.
func NewService(o ServiceOptions) (*Service, error) {
	if _, err := runner.ParseSpec(o.Backend); err != nil {
		return nil, err
	}
	if _, err := runner.ParseChaosSpec(o.Chaos); err != nil {
		return nil, err
	}
	cfg := service.Config{
		Workers:              o.Workers,
		QueueCap:             o.QueueCap,
		Backend:              o.Backend,
		Resume:               o.Resume,
		JobRetries:           o.JobRetries,
		Chaos:                o.Chaos,
		RecommendK:           o.RecommendK,
		RecommendMaxDistance: o.RecommendMaxDistance,
		RecommendConfidence:  o.RecommendConfidence,
		MaxHistoryKeys:       o.MaxHistoryKeys,
	}
	if len(o.Tenants) > 0 {
		cfg.Tenants = make(map[string]service.TenantBudget, len(o.Tenants))
		for name, b := range o.Tenants {
			cfg.Tenants[name] = service.TenantBudget{
				MaxInFlight:   b.MaxInFlight,
				SubmitRate:    b.SubmitRate,
				SubmitBurst:   b.SubmitBurst,
				MaxClusterSec: b.MaxClusterSec,
			}
		}
	}
	if o.HistoryDir != "" {
		fs, err := service.NewFileStore(o.HistoryDir)
		if err != nil {
			return nil, err
		}
		cfg.Store = fs
	}
	if !o.Quiet {
		cfg.Logf = progress.New(os.Stderr, "locat-serve:")
	}
	return &Service{svc: service.New(cfg)}, nil
}

// specOf maps the public Options onto a service job spec.
func specOf(o Options) (service.JobSpec, error) {
	if o.Schedule != nil {
		return service.JobSpec{}, fmt.Errorf("locat: service jobs do not support Schedule; tune with a fixed target size (warm starts cover the size-change scenario)")
	}
	return service.JobSpec{
		Tenant:        o.Tenant,
		Priority:      service.Priority(o.Priority),
		DeadlineSec:   o.DeadlineSec,
		MaxClusterSec: o.MaxClusterSec,
		Cluster:       o.Cluster,
		Benchmark:     o.Benchmark,
		DataSizeGB:    o.DataSizeGB,
		Seed:          o.Seed,
		NQCSA:         o.NQCSA,
		NIICP:         o.NIICP,
		MaxIterations: o.MaxIterations,
		DisableQCSA:   o.DisableQCSA,
		DisableIICP:   o.DisableIICP,
		DisableDAGP:   o.DisableDAGP,
		ColdStart:     o.ColdStart,
		Backend:       o.Backend,
	}, nil
}

// Submit enqueues a tuning job and returns its ID without blocking.
func (s *Service) Submit(o Options) (string, error) {
	spec, err := specOf(o)
	if err != nil {
		return "", err
	}
	return s.svc.Submit(spec)
}

// Status returns the job's current snapshot.
func (s *Service) Status(id string) (JobStatus, error) {
	st, err := s.svc.Status(id)
	if err != nil {
		return JobStatus{}, err
	}
	out := JobStatus{
		ID:          st.ID,
		State:       JobState(st.State),
		Err:         st.Error,
		Fingerprint: st.Fingerprint,
		Submitted:   st.Submitted,
	}
	if st.Started != nil {
		out.Started = *st.Started
	}
	if st.Finished != nil {
		out.Finished = *st.Finished
	}
	return out, nil
}

// Result blocks until the job finishes and returns its tuning result; a
// failed or cancelled job returns an error.
func (s *Service) Result(id string) (*Result, error) {
	jr, err := s.svc.Result(id)
	if err != nil {
		return nil, err
	}
	st, err := s.svc.Status(id)
	if err != nil {
		return nil, err
	}
	res := &Result{
		best:             jr.BestConfig,
		BestParams:       jr.BestParams,
		TunedSeconds:     jr.TunedSec,
		DefaultSeconds:   jr.DefaultSec,
		OverheadSeconds:  jr.OverheadSec,
		SamplingSeconds:  jr.SamplingSec,
		SearchSeconds:    jr.SearchSec,
		WarmStarted:      jr.WarmStarted,
		Degraded:         jr.Degraded,
		FellBack:         jr.FellBack,
		Runs:             jr.FullRuns + jr.RQARuns,
		SensitiveQueries: jr.SensitiveQueries,
		ImportantParams:  jr.ImportantParams,
	}
	if st.Started != nil && st.Finished != nil {
		res.Elapsed = st.Finished.Sub(*st.Started)
	}
	if spans, err := s.svc.Trace(id); err == nil {
		res.Phases = phasesOf(spans)
	}
	return res, nil
}

// Cancel requests cancellation: queued jobs never start and running jobs
// stop at the next evaluation boundary.
func (s *Service) Cancel(id string) error { return s.svc.Cancel(id) }

// Jobs returns snapshots of all jobs in submission order.
func (s *Service) Jobs() []JobStatus {
	sts := s.svc.Jobs()
	out := make([]JobStatus, 0, len(sts))
	for _, st := range sts {
		j := JobStatus{
			ID:          st.ID,
			State:       JobState(st.State),
			Err:         st.Error,
			Fingerprint: st.Fingerprint,
			Submitted:   st.Submitted,
		}
		if st.Started != nil {
			j.Started = *st.Started
		}
		if st.Finished != nil {
			j.Finished = *st.Finished
		}
		out = append(out, j)
	}
	return out
}

// HistoryEntry summarizes one stored session in the history store.
type HistoryEntry struct {
	// Key is the workload-fingerprint key.
	Key string
	// JobID produced the entry; Created is its completion time.
	JobID   string
	Created time.Time
	// TargetGB, TunedSeconds and OverheadSeconds mirror the session result.
	TargetGB        float64
	TunedSeconds    float64
	OverheadSeconds float64
	// Observations is the number of stored tuning runs.
	Observations int
}

// History lists the history store's contents.
func (s *Service) History() ([]HistoryEntry, error) {
	sums, err := s.svc.History()
	if err != nil {
		return nil, err
	}
	out := make([]HistoryEntry, 0, len(sums))
	for _, h := range sums {
		out = append(out, HistoryEntry{
			Key:             h.Key,
			JobID:           h.JobID,
			Created:         time.Unix(h.CreatedUnix, 0),
			TargetGB:        h.TargetGB,
			TunedSeconds:    h.TunedSec,
			OverheadSeconds: h.OverheadSec,
			Observations:    h.Obs,
		})
	}
	return out, nil
}

// RecommendOptions tune one zero-execution recommendation.
type RecommendOptions struct {
	// K is the number of nearest history entries to retrieve (0: the
	// service default, normally 5).
	K int
	// MaxDistance is the feature-space radius past which a history entry no
	// longer counts as a neighbor (0: the service default, normally 0.75).
	MaxDistance float64
	// MinConfidence is the retrieval-evidence score below which the
	// recommendation is a miss (0: the service default, normally 0.5).
	MinConfidence float64
	// Refine, on a confident hit, additionally submits a background tuning
	// job seeded with the retrieved neighbors; its ID is reported as
	// RefineJobID. Serve the blended config now, converge later.
	Refine bool
	// NoFallback suppresses the automatic tuning job on a low-confidence
	// miss.
	NoFallback bool
}

// RecommendedNeighbor is the provenance of one retrieved history entry.
type RecommendedNeighbor struct {
	// JobID produced the entry; Key is its workload-fingerprint key.
	JobID, Key string
	// Distance is the feature-space distance to the request's workload;
	// Weight is the entry's share of the blended configuration.
	Distance, Weight float64
	// TunedSeconds and TargetGB mirror the stored session.
	TunedSeconds, TargetGB float64
	// Observations is the number of stored tuning runs backing the entry.
	Observations int
}

// Recommendation is a zero-execution recommendation: a configuration blended
// from the nearest past tuning sessions, served without a single sample run.
type Recommendation struct {
	// Outcome is "hit" (served from retrieval), "fallback" (low confidence;
	// a tuning job was submitted as RefineJobID) or "miss" (low confidence
	// with NoFallback set).
	Outcome string
	// BestParams and SparkConf are the distance-weighted blend of the
	// neighbors' best configurations, snapped onto the knob space.
	BestParams map[string]float64
	SparkConf  string
	// Confidence in [0,1] scores the retrieval evidence.
	Confidence float64
	// EstimatedSeconds is the distance-weighted mean of the neighbors'
	// tuned latencies — an expectation, not a measurement.
	EstimatedSeconds float64
	// Neighbors is the retrieval provenance, nearest first.
	Neighbors []RecommendedNeighbor
	// RefineJobID is the background tuning job of a refine hit or a
	// fallback; RefineError records a refine submission that failed.
	RefineJobID string
	RefineError string
}

func recommendationOf(rec *service.Recommendation) *Recommendation {
	out := &Recommendation{
		Outcome:          rec.Outcome,
		BestParams:       rec.BestParams,
		SparkConf:        rec.SparkConf,
		Confidence:       rec.Confidence,
		EstimatedSeconds: rec.EstimatedSec,
		RefineJobID:      rec.RefineJobID,
		RefineError:      rec.RefineError,
	}
	for _, n := range rec.Neighbors {
		out.Neighbors = append(out.Neighbors, RecommendedNeighbor{
			JobID:        n.JobID,
			Key:          n.Key,
			Distance:     n.Distance,
			Weight:       n.Weight,
			TunedSeconds: n.TunedSec,
			TargetGB:     n.TargetGB,
			Observations: n.Obs,
		})
	}
	return out
}

// Recommend serves a configuration for the workload immediately, with zero
// cluster executions: the k nearest past sessions are retrieved from the
// history store and their best configurations blended by similarity. A
// confident hit returns in microseconds; a low-confidence one submits a
// normal tuning job as the fallback (unless NoFallback is set).
func (s *Service) Recommend(o Options, ro RecommendOptions) (*Recommendation, error) {
	spec, err := specOf(o)
	if err != nil {
		return nil, err
	}
	rec, err := s.svc.Recommend(service.RecommendRequest{
		JobSpec: spec,
		RecommendOptions: service.RecommendOptions{
			K:             ro.K,
			MaxDistance:   ro.MaxDistance,
			MinConfidence: ro.MinConfidence,
		},
		Refine:     ro.Refine,
		NoFallback: ro.NoFallback,
	})
	if err != nil {
		return nil, err
	}
	return recommendationOf(rec), nil
}

// RecommendFromHistory serves a zero-execution recommendation straight from
// a history directory, without starting a service: open the store, load (or
// build) its k-NN index, retrieve and blend. Fallback submission is not
// available on this path — a low-confidence result reports outcome "miss".
func RecommendFromHistory(dir string, o Options, ro RecommendOptions) (*Recommendation, error) {
	spec, err := specOf(o)
	if err != nil {
		return nil, err
	}
	fs, err := service.NewFileStore(dir)
	if err != nil {
		return nil, err
	}
	rec, _, err := service.NewRecommender(fs).Recommend(spec, service.RecommendOptions{
		K:             ro.K,
		MaxDistance:   ro.MaxDistance,
		MinConfidence: ro.MinConfidence,
	})
	if err != nil {
		return nil, err
	}
	return recommendationOf(rec), nil
}

// Handler returns the service's HTTP+JSON API (see cmd/locat-serve).
func (s *Service) Handler() http.Handler { return s.svc.Handler() }

// Ready reports whether the service accepts work: true once startup resume
// has requeued the interrupted backlog, false again the moment a drain
// begins. The HTTP handler serves it as /readyz.
func (s *Service) Ready() bool { return s.svc.Ready() }

// Close drains the service: submissions stop, queued and running jobs are
// checkpointed (not cancelled) when the store supports it, and a restart
// with Resume picks every suspended job back up under its original ID.
// Without checkpointing, queued jobs are cancelled and running sessions
// run to completion.
func (s *Service) Close() { s.svc.Close() }
