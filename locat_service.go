package locat

import (
	"fmt"
	"net/http"
	"os"
	"time"

	"locat/internal/progress"
	"locat/internal/runner"
	"locat/internal/service"
)

// ServiceOptions configure a tuning Service.
type ServiceOptions struct {
	// Workers is the maximum number of tuning sessions running
	// concurrently (default 2). Further submissions queue.
	Workers int
	// HistoryDir, when non-empty, persists the tuning history to one JSON
	// file per workload fingerprint in that directory, so warm starts
	// survive restarts. Empty keeps the history in memory.
	HistoryDir string
	// QueueCap bounds the submission backlog (default 256).
	QueueCap int
	// Quiet suppresses the service's progress log on stderr.
	Quiet bool
	// Backend is the default execution backend of tuning sessions (an
	// internal/runner spec: "sim", "record=PATH", "replay=PATH", or
	// "sparkrest=URL"; empty selects the simulator). Individual jobs may
	// override it via Options.Backend.
	Backend string
	// Resume requeues jobs whose checkpoints survived a process death: on
	// startup every checkpoint in the store becomes a queued job under its
	// original ID, and the resumed session serves already-paid runs from
	// the checkpoint instead of re-executing them. Meaningful together with
	// HistoryDir (an in-memory store dies with the process).
	Resume bool
	// JobRetries bounds automatic in-process retries of failed jobs
	// (default 0). Retried jobs resume from their checkpoint, so each
	// attempt only pays for runs no earlier attempt completed.
	JobRetries int
	// Chaos, when non-empty, wraps every session backend in deterministic
	// fault injection plus the healing retry/breaker layer (same spec
	// syntax as Options.Chaos). Meant for resilience testing.
	Chaos string
}

// JobState is a job's lifecycle position: "queued", "running", "succeeded",
// "failed" or "cancelled".
type JobState string

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool { return service.State(s).Terminal() }

// JobStatus is a snapshot of a submitted job.
type JobStatus struct {
	// ID is the handle Submit returned.
	ID string
	// State is the lifecycle position.
	State JobState
	// Err holds the failure message of a failed job.
	Err string
	// Fingerprint is the workload-fingerprint key the job's history is
	// stored under.
	Fingerprint string
	// Submitted, Started and Finished are the lifecycle timestamps
	// (Started/Finished are zero while not yet reached).
	Submitted, Started, Finished time.Time
}

// Service is a long-running tuning service: a bounded pool of concurrent
// sessions plus a history store of finished ones, keyed by workload
// fingerprint. Sessions for workloads similar to past ones (same cluster,
// benchmark and technique set, input size within a neighboring power-of-two
// bucket) are warm-started: the datasize-aware GP is seeded with retrieved
// observations and the QCSA / IICP artifacts are reused, so the session
// skips most of the full-application sample collection — the dominant part
// of the paper's optimization time.
//
//	svc, _ := locat.NewService(locat.ServiceOptions{Workers: 4})
//	defer svc.Close()
//	id, _ := svc.Submit(locat.Options{Benchmark: "TPC-H", DataSizeGB: 100})
//	res, _ := svc.Result(id) // blocks; later similar jobs get cheaper
type Service struct {
	svc *service.Service
}

// NewService starts a tuning service.
func NewService(o ServiceOptions) (*Service, error) {
	if _, err := runner.ParseSpec(o.Backend); err != nil {
		return nil, err
	}
	if _, err := runner.ParseChaosSpec(o.Chaos); err != nil {
		return nil, err
	}
	cfg := service.Config{
		Workers:    o.Workers,
		QueueCap:   o.QueueCap,
		Backend:    o.Backend,
		Resume:     o.Resume,
		JobRetries: o.JobRetries,
		Chaos:      o.Chaos,
	}
	if o.HistoryDir != "" {
		fs, err := service.NewFileStore(o.HistoryDir)
		if err != nil {
			return nil, err
		}
		cfg.Store = fs
	}
	if !o.Quiet {
		cfg.Logf = progress.New(os.Stderr, "locat-serve:")
	}
	return &Service{svc: service.New(cfg)}, nil
}

// specOf maps the public Options onto a service job spec.
func specOf(o Options) (service.JobSpec, error) {
	if o.Schedule != nil {
		return service.JobSpec{}, fmt.Errorf("locat: service jobs do not support Schedule; tune with a fixed target size (warm starts cover the size-change scenario)")
	}
	return service.JobSpec{
		Cluster:       o.Cluster,
		Benchmark:     o.Benchmark,
		DataSizeGB:    o.DataSizeGB,
		Seed:          o.Seed,
		NQCSA:         o.NQCSA,
		NIICP:         o.NIICP,
		MaxIterations: o.MaxIterations,
		DisableQCSA:   o.DisableQCSA,
		DisableIICP:   o.DisableIICP,
		DisableDAGP:   o.DisableDAGP,
		ColdStart:     o.ColdStart,
		Backend:       o.Backend,
	}, nil
}

// Submit enqueues a tuning job and returns its ID without blocking.
func (s *Service) Submit(o Options) (string, error) {
	spec, err := specOf(o)
	if err != nil {
		return "", err
	}
	return s.svc.Submit(spec)
}

// Status returns the job's current snapshot.
func (s *Service) Status(id string) (JobStatus, error) {
	st, err := s.svc.Status(id)
	if err != nil {
		return JobStatus{}, err
	}
	out := JobStatus{
		ID:          st.ID,
		State:       JobState(st.State),
		Err:         st.Error,
		Fingerprint: st.Fingerprint,
		Submitted:   st.Submitted,
	}
	if st.Started != nil {
		out.Started = *st.Started
	}
	if st.Finished != nil {
		out.Finished = *st.Finished
	}
	return out, nil
}

// Result blocks until the job finishes and returns its tuning result; a
// failed or cancelled job returns an error.
func (s *Service) Result(id string) (*Result, error) {
	jr, err := s.svc.Result(id)
	if err != nil {
		return nil, err
	}
	st, err := s.svc.Status(id)
	if err != nil {
		return nil, err
	}
	res := &Result{
		best:             jr.BestConfig,
		BestParams:       jr.BestParams,
		TunedSeconds:     jr.TunedSec,
		DefaultSeconds:   jr.DefaultSec,
		OverheadSeconds:  jr.OverheadSec,
		SamplingSeconds:  jr.SamplingSec,
		SearchSeconds:    jr.SearchSec,
		WarmStarted:      jr.WarmStarted,
		Degraded:         jr.Degraded,
		FellBack:         jr.FellBack,
		Runs:             jr.FullRuns + jr.RQARuns,
		SensitiveQueries: jr.SensitiveQueries,
		ImportantParams:  jr.ImportantParams,
	}
	if st.Started != nil && st.Finished != nil {
		res.Elapsed = st.Finished.Sub(*st.Started)
	}
	if spans, err := s.svc.Trace(id); err == nil {
		res.Phases = phasesOf(spans)
	}
	return res, nil
}

// Cancel requests cancellation: queued jobs never start and running jobs
// stop at the next evaluation boundary.
func (s *Service) Cancel(id string) error { return s.svc.Cancel(id) }

// Jobs returns snapshots of all jobs in submission order.
func (s *Service) Jobs() []JobStatus {
	sts := s.svc.Jobs()
	out := make([]JobStatus, 0, len(sts))
	for _, st := range sts {
		j := JobStatus{
			ID:          st.ID,
			State:       JobState(st.State),
			Err:         st.Error,
			Fingerprint: st.Fingerprint,
			Submitted:   st.Submitted,
		}
		if st.Started != nil {
			j.Started = *st.Started
		}
		if st.Finished != nil {
			j.Finished = *st.Finished
		}
		out = append(out, j)
	}
	return out
}

// HistoryEntry summarizes one stored session in the history store.
type HistoryEntry struct {
	// Key is the workload-fingerprint key.
	Key string
	// JobID produced the entry; Created is its completion time.
	JobID   string
	Created time.Time
	// TargetGB, TunedSeconds and OverheadSeconds mirror the session result.
	TargetGB        float64
	TunedSeconds    float64
	OverheadSeconds float64
	// Observations is the number of stored tuning runs.
	Observations int
}

// History lists the history store's contents.
func (s *Service) History() ([]HistoryEntry, error) {
	sums, err := s.svc.History()
	if err != nil {
		return nil, err
	}
	out := make([]HistoryEntry, 0, len(sums))
	for _, h := range sums {
		out = append(out, HistoryEntry{
			Key:             h.Key,
			JobID:           h.JobID,
			Created:         time.Unix(h.CreatedUnix, 0),
			TargetGB:        h.TargetGB,
			TunedSeconds:    h.TunedSec,
			OverheadSeconds: h.OverheadSec,
			Observations:    h.Obs,
		})
	}
	return out, nil
}

// Handler returns the service's HTTP+JSON API (see cmd/locat-serve).
func (s *Service) Handler() http.Handler { return s.svc.Handler() }

// Close stops accepting submissions, cancels queued jobs and waits for
// running sessions to finish.
func (s *Service) Close() { s.svc.Close() }
